"""A CDCL SAT solver (conflict-driven clause learning).

This is the reproduction's stand-in for MiniSat/PySAT, used by the
equivalence checker and by the adversary's decamouflaging test.  It
implements the standard modern architecture:

* two-literal watching for unit propagation,
* 1UIP conflict analysis with clause learning and non-chronological
  backtracking,
* VSIDS-style activity-based decision heuristics with phase saving,
* geometric restarts and learned-clause database reduction.

The solver works on :class:`repro.sat.cnf.Cnf` formulas with DIMACS-style
integer literals and supports solving under assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .cnf import Cnf

__all__ = ["SatResult", "SatSolver", "solve"]

_UNASSIGNED = 0
_TRUE = 1
_FALSE = -1


@dataclass
class SatResult:
    """Outcome of a SAT call."""

    satisfiable: bool
    model: Dict[int, bool] = field(default_factory=dict)
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0

    def value(self, variable: int) -> Optional[bool]:
        """Value of a variable in the model (None when unconstrained/UNSAT)."""
        return self.model.get(variable)


class SatSolver:
    """CDCL solver over a fixed CNF formula."""

    def __init__(self, formula: Cnf):
        self._num_vars = formula.num_vars
        self._clauses: List[List[int]] = []
        self._watches: Dict[int, List[int]] = {}
        self._assign: List[int] = [_UNASSIGNED] * (self._num_vars + 1)
        self._level: List[int] = [0] * (self._num_vars + 1)
        self._reason: List[Optional[int]] = [None] * (self._num_vars + 1)
        self._activity: List[float] = [0.0] * (self._num_vars + 1)
        self._phase: List[bool] = [False] * (self._num_vars + 1)
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._queue_head = 0
        self._activity_increment = 1.0
        self._activity_decay = 0.95
        self._learned_start = 0
        self._trivially_unsat = False

        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0

        for clause in formula.clauses:
            self._add_initial_clause(list(clause))
        self._learned_start = len(self._clauses)

    # -------------------------------------------------------------- #
    # Clause management
    # -------------------------------------------------------------- #
    def _add_initial_clause(self, literals: List[int]) -> None:
        if self._trivially_unsat:
            return
        # Remove duplicates; drop tautologies.
        seen = set()
        cleaned: List[int] = []
        for literal in literals:
            if -literal in seen:
                return
            if literal not in seen:
                seen.add(literal)
                cleaned.append(literal)
        if not cleaned:
            self._trivially_unsat = True
            return
        if len(cleaned) == 1:
            if not self._enqueue(cleaned[0], None):
                self._trivially_unsat = True
            return
        self._attach_clause(cleaned)

    def _attach_clause(self, literals: List[int]) -> int:
        index = len(self._clauses)
        self._clauses.append(literals)
        self._watches.setdefault(literals[0], []).append(index)
        self._watches.setdefault(literals[1], []).append(index)
        return index

    # -------------------------------------------------------------- #
    # Assignment helpers
    # -------------------------------------------------------------- #
    def _literal_value(self, literal: int) -> int:
        value = self._assign[abs(literal)]
        if value == _UNASSIGNED:
            return _UNASSIGNED
        return value if literal > 0 else -value

    def _enqueue(self, literal: int, reason: Optional[int]) -> bool:
        value = self._literal_value(literal)
        if value == _TRUE:
            return True
        if value == _FALSE:
            return False
        variable = abs(literal)
        self._assign[variable] = _TRUE if literal > 0 else _FALSE
        self._level[variable] = self._decision_level()
        self._reason[variable] = reason
        self._phase[variable] = literal > 0
        self._trail.append(literal)
        return True

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    # -------------------------------------------------------------- #
    # Unit propagation with two watched literals
    # -------------------------------------------------------------- #
    def _propagate(self) -> Optional[int]:
        while self._queue_head < len(self._trail):
            literal = self._trail[self._queue_head]
            self._queue_head += 1
            self.propagations += 1
            falsified = -literal
            watchers = self._watches.get(falsified, [])
            index = 0
            while index < len(watchers):
                clause_index = watchers[index]
                clause = self._clauses[clause_index]
                # Ensure the falsified literal is in position 1.
                if clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._literal_value(first) == _TRUE:
                    index += 1
                    continue
                # Look for a new literal to watch.
                found = False
                for position in range(2, len(clause)):
                    candidate = clause[position]
                    if self._literal_value(candidate) != _FALSE:
                        clause[1], clause[position] = clause[position], clause[1]
                        self._watches.setdefault(candidate, []).append(clause_index)
                        watchers[index] = watchers[-1]
                        watchers.pop()
                        found = True
                        break
                if found:
                    continue
                # Clause is unit or conflicting.
                if self._literal_value(first) == _FALSE:
                    return clause_index
                self._enqueue(first, clause_index)
                index += 1
        return None

    # -------------------------------------------------------------- #
    # Conflict analysis (first UIP)
    # -------------------------------------------------------------- #
    def _analyze(self, conflict_index: int) -> Tuple[List[int], int]:
        learned: List[int] = [0]  # placeholder for the asserting literal
        seen = [False] * (self._num_vars + 1)
        counter = 0
        literal = 0
        clause = self._clauses[conflict_index]
        trail_index = len(self._trail) - 1
        current_level = self._decision_level()

        while True:
            for clause_literal in clause:
                # Skip the literal we are resolving on (the implied literal of
                # the reason clause); everything else is examined.
                if literal != 0 and clause_literal == literal:
                    continue
                variable = abs(clause_literal)
                if seen[variable] or self._level[variable] == 0:
                    continue
                seen[variable] = True
                self._bump_activity(variable)
                if self._level[variable] == current_level:
                    counter += 1
                else:
                    learned.append(clause_literal)
            # Find the next literal of the current level on the trail.
            while not seen[abs(self._trail[trail_index])]:
                trail_index -= 1
            literal = self._trail[trail_index]
            variable = abs(literal)
            seen[variable] = False
            trail_index -= 1
            counter -= 1
            if counter == 0:
                break
            reason_index = self._reason[variable]
            clause = self._clauses[reason_index]

        learned[0] = -literal
        if len(learned) == 1:
            backtrack_level = 0
        else:
            # Move the highest-level literal (other than the asserting one)
            # to position 1 so it can be watched.
            best = 1
            for position in range(2, len(learned)):
                if self._level[abs(learned[position])] > self._level[abs(learned[best])]:
                    best = position
            learned[1], learned[best] = learned[best], learned[1]
            backtrack_level = self._level[abs(learned[1])]
        return learned, backtrack_level

    def _bump_activity(self, variable: int) -> None:
        self._activity[variable] += self._activity_increment
        if self._activity[variable] > 1e100:
            for index in range(1, self._num_vars + 1):
                self._activity[index] *= 1e-100
            self._activity_increment *= 1e-100

    def _decay_activities(self) -> None:
        self._activity_increment /= self._activity_decay

    # -------------------------------------------------------------- #
    # Backtracking / restarts
    # -------------------------------------------------------------- #
    def _backtrack(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        boundary = self._trail_lim[level]
        for literal in reversed(self._trail[boundary:]):
            variable = abs(literal)
            self._assign[variable] = _UNASSIGNED
            self._reason[variable] = None
        del self._trail[boundary:]
        del self._trail_lim[level:]
        self._queue_head = len(self._trail)

    def _reduce_learned(self, keep_fraction: float = 0.5) -> None:
        """Drop long, inactive learned clauses (simple size-based policy)."""
        learned_indices = list(range(self._learned_start, len(self._clauses)))
        if len(learned_indices) < 2000:
            return
        # Keep short clauses; rebuilding the watch lists is simpler than
        # surgically removing entries.
        keep = [
            self._clauses[index]
            for index in learned_indices
            if len(self._clauses[index]) <= 4 or self._clause_is_reason(index)
        ]
        long_clauses = [
            self._clauses[index]
            for index in learned_indices
            if len(self._clauses[index]) > 4 and not self._clause_is_reason(index)
        ]
        keep_count = int(len(long_clauses) * keep_fraction)
        keep.extend(long_clauses[-keep_count:] if keep_count else [])
        reasons_remap_needed = False
        # Only safe at decision level 0 with no active reasons.
        if self._decision_level() != 0:
            return
        self._clauses = self._clauses[: self._learned_start] + keep
        self._watches = {}
        for index, clause in enumerate(self._clauses):
            if len(clause) >= 2:
                self._watches.setdefault(clause[0], []).append(index)
                self._watches.setdefault(clause[1], []).append(index)
        for variable in range(1, self._num_vars + 1):
            if self._reason[variable] is not None:
                self._reason[variable] = None
        del reasons_remap_needed

    def _clause_is_reason(self, clause_index: int) -> bool:
        return any(reason == clause_index for reason in self._reason if reason is not None)

    # -------------------------------------------------------------- #
    # Decisions
    # -------------------------------------------------------------- #
    def _pick_branch_variable(self) -> Optional[int]:
        best_variable = None
        best_activity = -1.0
        for variable in range(1, self._num_vars + 1):
            if self._assign[variable] == _UNASSIGNED and self._activity[variable] > best_activity:
                best_activity = self._activity[variable]
                best_variable = variable
        return best_variable

    # -------------------------------------------------------------- #
    # Main loop
    # -------------------------------------------------------------- #
    def solve(self, assumptions: Sequence[int] = ()) -> SatResult:
        """Solve the formula, optionally under assumptions (literals)."""
        if self._trivially_unsat:
            return SatResult(False, conflicts=self.conflicts, decisions=self.decisions,
                             propagations=self.propagations)
        self._backtrack(0)
        conflict = self._propagate()
        if conflict is not None:
            return self._unsat_result()

        restart_limit = 100
        conflicts_since_restart = 0
        assumption_queue = list(assumptions)

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_since_restart += 1
                if self._decision_level() == 0:
                    return self._unsat_result()
                learned, backtrack_level = self._analyze(conflict)
                self._backtrack(backtrack_level)
                if len(learned) == 1:
                    if not self._enqueue(learned[0], None):
                        return self._unsat_result()
                else:
                    clause_index = self._attach_clause(learned)
                    self._enqueue(learned[0], clause_index)
                self._decay_activities()
                if conflicts_since_restart >= restart_limit:
                    conflicts_since_restart = 0
                    restart_limit = int(restart_limit * 1.5)
                    self._backtrack(0)
                    self._reduce_learned()
                continue

            # Apply pending assumptions as decisions.
            if len(self._trail_lim) < len(assumption_queue):
                literal = assumption_queue[len(self._trail_lim)]
                value = self._literal_value(literal)
                if value == _FALSE:
                    return self._unsat_result()
                self._trail_lim.append(len(self._trail))
                if value == _UNASSIGNED:
                    self._enqueue(literal, None)
                continue

            variable = self._pick_branch_variable()
            if variable is None:
                return self._sat_result()
            self.decisions += 1
            self._trail_lim.append(len(self._trail))
            phase = self._phase[variable]
            self._enqueue(variable if phase else -variable, None)

    # -------------------------------------------------------------- #
    # Results
    # -------------------------------------------------------------- #
    def _sat_result(self) -> SatResult:
        model = {
            variable: self._assign[variable] == _TRUE
            for variable in range(1, self._num_vars + 1)
            if self._assign[variable] != _UNASSIGNED
        }
        return SatResult(
            True,
            model=model,
            conflicts=self.conflicts,
            decisions=self.decisions,
            propagations=self.propagations,
        )

    def _unsat_result(self) -> SatResult:
        return SatResult(
            False,
            conflicts=self.conflicts,
            decisions=self.decisions,
            propagations=self.propagations,
        )


def solve(formula: Cnf, assumptions: Sequence[int] = ()) -> SatResult:
    """Convenience wrapper: build a solver and solve the formula."""
    return SatSolver(formula).solve(assumptions)

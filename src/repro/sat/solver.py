"""An incremental CDCL SAT solver (conflict-driven clause learning).

This is the reproduction's stand-in for MiniSat/PySAT, used by the
equivalence checker and by the adversary's decamouflaging attacks.  It
implements the standard modern architecture:

* two-literal watching for unit propagation,
* 1UIP conflict analysis with clause learning and non-chronological
  backtracking,
* VSIDS-style activity-based decision heuristics with phase saving,
* restarts with learned-clause database reduction — geometric by default
  (byte-identical to the historic behaviour), reluctant-doubling (Luby)
  opt-in via the ``restart_strategy`` knob or ``REPRO_RESTARTS``.

The solver works on :class:`repro.sat.cnf.Cnf` formulas with DIMACS-style
integer literals and supports solving under assumptions.

Incremental interface
---------------------

A :class:`SatSolver` is a *live* object, in the MiniSat mould, rather than a
one-shot function over a frozen formula:

* :meth:`SatSolver.add_clause` accepts new clauses at any time — also after
  a :meth:`solve` call.  The solver backtracks to decision level 0, attaches
  watches, simplifies the clause against the level-0 assignment, propagates
  new units, and records permanent unsatisfiability when the addition
  closes the formula.
* :meth:`SatSolver.reserve_vars` / :meth:`SatSolver.new_var` grow the
  per-variable arrays on demand; :meth:`add_clause` auto-grows when a
  clause references a variable beyond the current range.
* Learned clauses, VSIDS activities, and saved phases are all *kept* across
  successive :meth:`solve` calls, so a sequence of related queries (the DIP
  loop of the oracle-guided attack, candidate enumeration, miter checks
  under different activation literals) gets cheaper as the solver warms up.
* Solving under *assumptions* distinguishes "UNSAT under these assumptions"
  (a later call with other assumptions may succeed) from outright
  unsatisfiability of the clause database (permanent: every later call
  fails immediately).

A solver can also *follow* a growing :class:`~repro.sat.cnf.Cnf`: construct
it with ``SatSolver(cnf, follow=True)`` and every subsequent
``cnf.new_var()`` / ``cnf.add_clause()`` is mirrored into the live solver,
so client code keeps a readable CNF record (names, DIMACS export) while the
solver incrementally ingests the formula.

Statistics are kept both cumulatively on the solver (``solver.conflicts``,
``solver.stats()``) and per call on the returned :class:`SatResult`
(``result.conflicts`` is the number of conflicts *this* call needed).
"""

from __future__ import annotations

import heapq
import os
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..faults import fault_fires, faults_enabled
from ..obs import metrics as obs_metrics
from .cnf import Cnf

__all__ = [
    "SatResult",
    "SatSolver",
    "SolveBudget",
    "SolveBudgetExceeded",
    "solve",
    "RESTART_ENV_VAR",
    "RESTART_STRATEGIES",
    "BUDGET_ENV_VAR",
    "FORGET_ENV_VAR",
    "DEFAULT_FORGET_LIMIT",
]

#: Environment variable selecting the default restart strategy by name.
RESTART_ENV_VAR = "REPRO_RESTARTS"

#: Environment variable supplying a default per-call solve budget spec.
BUDGET_ENV_VAR = "REPRO_SOLVE_BUDGET"

#: Environment variable enabling LBD clause forgetting ("1"/"true" for the
#: default schedule, an integer for a custom initial database limit, unset
#: or "0" for the transcript-identical historic behaviour).
FORGET_ENV_VAR = "REPRO_CLAUSE_FORGET"

#: Initial learned-database size that triggers the first LBD reduction.
DEFAULT_FORGET_LIMIT = 2000

#: Restart strategies accepted by :class:`SatSolver`.
RESTART_STRATEGIES = ("geometric", "luby")

_UNASSIGNED = 0
_TRUE = 1
_FALSE = -1

_FORGET_OFF_WORDS = ("", "0", "false", "no", "off")
_FORGET_ON_WORDS = ("1", "true", "yes", "on")


def _resolve_clause_forget(value) -> int:
    """Resolve the clause-forgetting knob to an initial DB limit (0 = off)."""
    if value is None:
        raw = os.environ.get(FORGET_ENV_VAR, "").strip().lower()
        if raw in _FORGET_OFF_WORDS:
            return 0
        if raw in _FORGET_ON_WORDS:
            return DEFAULT_FORGET_LIMIT
        try:
            limit = int(raw)
        except ValueError:
            raise ValueError(
                f"{FORGET_ENV_VAR} must be a boolean word or an integer "
                f"limit, got {raw!r}"
            ) from None
        return limit if limit > 0 else 0
    if value is True:
        return DEFAULT_FORGET_LIMIT
    if value is False:
        return 0
    limit = int(value)
    return limit if limit > 0 else 0


class SolveBudgetExceeded(RuntimeError):
    """A solve-dependent answer could not be produced within its budget.

    Raised by clients (equivalence checking, plausibility oracles) whose
    callers need a definite yes/no: an UNKNOWN verdict must never be
    silently coerced into SAT or UNSAT, so it surfaces as this exception
    instead.  The campaign runner classifies it as a *transient* failure
    and retries the job with an escalated budget.
    """


@dataclass(frozen=True)
class SolveBudget:
    """Per-``solve``-call resource limits (``None`` = unlimited).

    A budget turns the solver's open-ended search into an anytime
    computation: when any limit is hit the call returns a result with
    ``status == "unknown"`` instead of running forever.  Limits are per
    call, not cumulative over the solver's lifetime.
    """

    max_conflicts: Optional[int] = None
    max_propagations: Optional[int] = None
    max_seconds: Optional[float] = None

    def __post_init__(self):
        for name in ("max_conflicts", "max_propagations", "max_seconds"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value!r}")

    @property
    def unbounded(self) -> bool:
        """True when no limit is set (equivalent to no budget at all)."""
        return (
            self.max_conflicts is None
            and self.max_propagations is None
            and self.max_seconds is None
        )

    def scaled(self, factor: float) -> "SolveBudget":
        """A budget with every limit multiplied by ``factor`` (escalation)."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return SolveBudget(
            max_conflicts=(
                None if self.max_conflicts is None else max(1, int(self.max_conflicts * factor))
            ),
            max_propagations=(
                None
                if self.max_propagations is None
                else max(1, int(self.max_propagations * factor))
            ),
            max_seconds=None if self.max_seconds is None else self.max_seconds * factor,
        )

    def to_spec(self) -> str:
        """Inverse of :meth:`from_spec` (used to ship budgets to workers)."""
        parts = []
        if self.max_conflicts is not None:
            parts.append(f"conflicts={self.max_conflicts}")
        if self.max_propagations is not None:
            parts.append(f"propagations={self.max_propagations}")
        if self.max_seconds is not None:
            parts.append(f"seconds={self.max_seconds}")
        return ",".join(parts)

    @classmethod
    def from_spec(cls, spec: str) -> "SolveBudget":
        """Parse ``"conflicts=20000,propagations=5e6,seconds=2.5"``."""
        limits: Dict[str, float] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, separator, value = part.partition("=")
            key = key.strip()
            if not separator or key not in ("conflicts", "propagations", "seconds"):
                raise ValueError(
                    f"bad solve-budget entry {part!r}; expected "
                    "conflicts=N, propagations=N, or seconds=X"
                )
            limits[key] = float(value)
        return cls(
            max_conflicts=int(limits["conflicts"]) if "conflicts" in limits else None,
            max_propagations=(
                int(limits["propagations"]) if "propagations" in limits else None
            ),
            max_seconds=limits.get("seconds"),
        )

    @classmethod
    def from_environment(cls) -> Optional["SolveBudget"]:
        """Budget from ``REPRO_SOLVE_BUDGET``, or None when unset/empty."""
        raw = os.environ.get(BUDGET_ENV_VAR, "").strip()
        if not raw:
            return None
        budget = cls.from_spec(raw)
        return None if budget.unbounded else budget


@dataclass
class SatResult:
    """Outcome of a SAT call (statistics are per call, not cumulative).

    ``status`` is the three-valued verdict: ``"sat"``, ``"unsat"``, or
    ``"unknown"`` (solve budget exhausted / injected fault).  The historic
    ``satisfiable`` flag is kept in sync for two-valued callers — but an
    UNKNOWN result reports ``satisfiable=False``, so budget-aware callers
    must check :attr:`unknown` before trusting it.
    """

    satisfiable: bool
    model: Dict[int, bool] = field(default_factory=dict)
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    status: str = ""

    def __post_init__(self):
        if not self.status:
            self.status = "sat" if self.satisfiable else "unsat"

    @property
    def unknown(self) -> bool:
        """True when the call exhausted its budget without a verdict."""
        return self.status == "unknown"

    def value(self, variable: int) -> Optional[bool]:
        """Value of a variable in the model (None when unconstrained/UNSAT)."""
        return self.model.get(variable)


class SatSolver:
    """Incremental CDCL solver over a growable clause database."""

    #: Conflicts per Luby unit (the reluctant-doubling sequence multiplier).
    LUBY_BASE = 32

    def __init__(
        self,
        formula: Optional[Cnf] = None,
        follow: bool = False,
        restart_strategy: Optional[str] = None,
        backend: Optional[str] = None,
        clause_forget=None,
    ):
        strategy = restart_strategy or os.environ.get(RESTART_ENV_VAR) or "geometric"
        if strategy not in RESTART_STRATEGIES:
            raise ValueError(
                f"unknown restart strategy {strategy!r}; expected one of "
                f"{sorted(RESTART_STRATEGIES)}"
            )
        self.restart_strategy = strategy
        self._forget_limit = _resolve_clause_forget(clause_forget)
        from .. import backend as backend_mod

        self.backend = backend_mod.active_backend(backend)
        self._core = None
        if self.backend == "native":
            self._core = backend_mod.native_module().SolverCore(
                luby=1 if strategy == "luby" else 0,
                luby_base=self.LUBY_BASE,
                forget_limit=self._forget_limit,
            )
        self._num_vars = 0
        self._clauses: List[List[int]] = []
        self._learned_flags: List[bool] = []
        self._clause_lbd: List[int] = []
        self._num_learned = 0
        # Problem clauses as added by the client, including units and
        # clauses simplified away at level 0 (which never reach _clauses).
        self._num_problem_clauses = 0
        self._watches: Dict[int, List[int]] = {}
        self._assign: List[int] = [_UNASSIGNED]
        self._level: List[int] = [0]
        self._reason: List[Optional[int]] = [None]
        self._activity: List[float] = [0.0]
        self._phase: List[bool] = [False]
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        # Lazy max-heap of branching candidates as (-activity, variable)
        # entries; stale entries (assigned variables, outdated activities)
        # are discarded on pop.  Picks the same variable as a linear scan —
        # highest activity, lowest index on ties — in O(log n).
        self._order_heap: List[Tuple[float, int]] = []
        self._queue_head = 0
        self._activity_increment = 1.0
        self._activity_decay = 0.95
        self._trivially_unsat = False

        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.solve_calls = 0
        self.restarts = 0
        self.budget_exhaustions = 0
        self.forgotten_clauses = 0
        # Budget exhaustions recorded outside the native core (fault
        # injection); added to the core's own count when mirroring.
        self._extra_budget_exhaustions = 0

        if formula is not None:
            self.reserve_vars(formula.num_vars)
            for clause in formula.clauses:
                self.add_clause(clause)
            if follow:
                formula.attach(self)

    # -------------------------------------------------------------- #
    # Variable management
    # -------------------------------------------------------------- #
    @property
    def num_vars(self) -> int:
        """Number of variables the solver currently knows about."""
        return self._num_vars

    def _sync_counters(self) -> None:
        """Mirror the native core's counters onto the Python attributes."""
        core = self._core
        self.conflicts = core.conflicts
        self.decisions = core.decisions
        self.propagations = core.propagations
        self.restarts = core.restarts
        self.forgotten_clauses = core.forgotten_clauses
        self.budget_exhaustions = (
            core.budget_exhaustions + self._extra_budget_exhaustions
        )
        self._num_vars = core.num_vars
        self._num_learned = core.num_learned
        self._trivially_unsat = bool(core.trivially_unsat)

    def reserve_vars(self, num_vars: int) -> None:
        """Grow the per-variable arrays so variables up to ``num_vars`` exist."""
        if self._core is not None:
            self._core.reserve_vars(num_vars)
            self._num_vars = self._core.num_vars
            return
        grow = num_vars - self._num_vars
        if grow <= 0:
            return
        self._assign.extend([_UNASSIGNED] * grow)
        self._level.extend([0] * grow)
        self._reason.extend([None] * grow)
        self._activity.extend([0.0] * grow)
        self._phase.extend([False] * grow)
        for variable in range(self._num_vars + 1, num_vars + 1):
            heapq.heappush(self._order_heap, (-0.0, variable))
        self._num_vars = num_vars

    def new_var(self) -> int:
        """Allocate (and return) a fresh variable."""
        self.reserve_vars(self._num_vars + 1)
        return self._num_vars

    # ---- Cnf follow hooks (see Cnf.attach) ----------------------- #
    def on_new_var(self, variable: int) -> None:
        self.reserve_vars(variable)

    def on_clause(self, clause: Sequence[int]) -> None:
        self.add_clause(clause)

    # -------------------------------------------------------------- #
    # Clause management
    # -------------------------------------------------------------- #
    def add_clause(self, literals: Iterable[int]) -> None:
        """Add a clause to the live solver (allowed between solve calls).

        The clause is simplified against the permanent (level-0) assignment:
        satisfied clauses are dropped, falsified literals are removed, and a
        resulting unit is propagated immediately.  An empty (or fully
        falsified) clause makes the solver permanently UNSAT.
        """
        clause = list(literals)
        for literal in clause:
            if literal == 0:
                raise ValueError("0 is not a valid literal")
        self._num_problem_clauses += 1
        if self._trivially_unsat:
            return
        if self._core is not None:
            self._core.add_clause(clause)
            self._sync_counters()
            return
        self._backtrack(0)
        if clause:
            self.reserve_vars(max(abs(literal) for literal in clause))
        # Remove duplicates and level-0-falsified literals; drop tautologies
        # and clauses already satisfied at level 0.
        seen = set()
        cleaned: List[int] = []
        for literal in clause:
            if -literal in seen:
                return
            if literal in seen:
                continue
            value = self._literal_value(literal)
            if value == _TRUE:
                return
            if value == _FALSE:
                continue
            seen.add(literal)
            cleaned.append(literal)
        if not cleaned:
            self._trivially_unsat = True
            return
        if len(cleaned) == 1:
            if not self._enqueue(cleaned[0], None) or self._propagate() is not None:
                self._trivially_unsat = True
            return
        self._attach_clause(cleaned)

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> None:
        """Add several clauses."""
        for clause in clauses:
            self.add_clause(clause)

    def _attach_clause(
        self, literals: List[int], learned: bool = False, lbd: int = 0
    ) -> int:
        index = len(self._clauses)
        self._clauses.append(literals)
        self._learned_flags.append(learned)
        self._clause_lbd.append(lbd)
        if learned:
            self._num_learned += 1
        self._watches.setdefault(literals[0], []).append(index)
        self._watches.setdefault(literals[1], []).append(index)
        return index

    # -------------------------------------------------------------- #
    # Assignment helpers
    # -------------------------------------------------------------- #
    def _literal_value(self, literal: int) -> int:
        value = self._assign[abs(literal)]
        if value == _UNASSIGNED:
            return _UNASSIGNED
        return value if literal > 0 else -value

    def _enqueue(self, literal: int, reason: Optional[int]) -> bool:
        value = self._literal_value(literal)
        if value == _TRUE:
            return True
        if value == _FALSE:
            return False
        variable = abs(literal)
        self._assign[variable] = _TRUE if literal > 0 else _FALSE
        self._level[variable] = self._decision_level()
        self._reason[variable] = reason
        self._phase[variable] = literal > 0
        self._trail.append(literal)
        return True

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    # -------------------------------------------------------------- #
    # Unit propagation with two watched literals
    # -------------------------------------------------------------- #
    def _propagate(self) -> Optional[int]:
        while self._queue_head < len(self._trail):
            literal = self._trail[self._queue_head]
            self._queue_head += 1
            self.propagations += 1
            falsified = -literal
            watchers = self._watches.get(falsified, [])
            index = 0
            while index < len(watchers):
                clause_index = watchers[index]
                clause = self._clauses[clause_index]
                # Ensure the falsified literal is in position 1.
                if clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._literal_value(first) == _TRUE:
                    index += 1
                    continue
                # Look for a new literal to watch.
                found = False
                for position in range(2, len(clause)):
                    candidate = clause[position]
                    if self._literal_value(candidate) != _FALSE:
                        clause[1], clause[position] = clause[position], clause[1]
                        self._watches.setdefault(candidate, []).append(clause_index)
                        watchers[index] = watchers[-1]
                        watchers.pop()
                        found = True
                        break
                if found:
                    continue
                # Clause is unit or conflicting.
                if self._literal_value(first) == _FALSE:
                    return clause_index
                self._enqueue(first, clause_index)
                index += 1
        return None

    # -------------------------------------------------------------- #
    # Conflict analysis (first UIP)
    # -------------------------------------------------------------- #
    def _analyze(self, conflict_index: int) -> Tuple[List[int], int, int]:
        learned: List[int] = [0]  # placeholder for the asserting literal
        seen = [False] * (self._num_vars + 1)
        counter = 0
        literal = 0
        clause = self._clauses[conflict_index]
        trail_index = len(self._trail) - 1
        current_level = self._decision_level()

        while True:
            for clause_literal in clause:
                # Skip the literal we are resolving on (the implied literal of
                # the reason clause); everything else is examined.
                if literal != 0 and clause_literal == literal:
                    continue
                variable = abs(clause_literal)
                if seen[variable] or self._level[variable] == 0:
                    continue
                seen[variable] = True
                self._bump_activity(variable)
                if self._level[variable] == current_level:
                    counter += 1
                else:
                    learned.append(clause_literal)
            # Find the next literal of the current level on the trail.
            while not seen[abs(self._trail[trail_index])]:
                trail_index -= 1
            literal = self._trail[trail_index]
            variable = abs(literal)
            seen[variable] = False
            trail_index -= 1
            counter -= 1
            if counter == 0:
                break
            reason_index = self._reason[variable]
            clause = self._clauses[reason_index]

        learned[0] = -literal
        if len(learned) == 1:
            backtrack_level = 0
        else:
            # Move the highest-level literal (other than the asserting one)
            # to position 1 so it can be watched.
            best = 1
            for position in range(2, len(learned)):
                if self._level[abs(learned[position])] > self._level[abs(learned[best])]:
                    best = position
            learned[1], learned[best] = learned[best], learned[1]
            backtrack_level = self._level[abs(learned[1])]
        lbd = 0
        if self._forget_limit:
            # Literal block distance: distinct decision levels among the
            # learned literals, measured before backtracking.
            lbd = len({self._level[abs(literal)] for literal in learned})
        return learned, backtrack_level, lbd

    def _bump_activity(self, variable: int) -> None:
        self._activity[variable] += self._activity_increment
        if self._activity[variable] > 1e100:
            for index in range(1, self._num_vars + 1):
                self._activity[index] *= 1e-100
            self._activity_increment *= 1e-100
            # Every heap key is stale after rescaling.
            self._rebuild_order_heap()

    def _rebuild_order_heap(self) -> None:
        self._order_heap = [
            (-self._activity[index], index)
            for index in range(1, self._num_vars + 1)
            if self._assign[index] == _UNASSIGNED
        ]
        heapq.heapify(self._order_heap)

    def _decay_activities(self) -> None:
        self._activity_increment /= self._activity_decay

    # -------------------------------------------------------------- #
    # Backtracking / restarts
    # -------------------------------------------------------------- #
    def _backtrack(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        boundary = self._trail_lim[level]
        for literal in reversed(self._trail[boundary:]):
            variable = abs(literal)
            self._assign[variable] = _UNASSIGNED
            self._reason[variable] = None
            heapq.heappush(self._order_heap, (-self._activity[variable], variable))
        del self._trail[boundary:]
        del self._trail_lim[level:]
        self._queue_head = len(self._trail)

    def _reduce_learned(self, keep_fraction: float = 0.5) -> None:
        """Drop long, inactive learned clauses (simple size-based policy)."""
        # Only safe at decision level 0 with no active reasons.
        if self._decision_level() != 0:
            return
        if self._num_learned < 2000:
            return
        # No clause needs to survive as a reason: at level 0 the only
        # reasons belong to level-0 assignments, which conflict analysis
        # skips, and they are all nulled after the rebuild below.
        kept_clauses: List[List[int]] = []
        kept_flags: List[bool] = []
        kept_lbd: List[int] = []
        long_clauses: List[List[int]] = []
        long_lbd: List[int] = []
        for index, clause in enumerate(self._clauses):
            if not self._learned_flags[index]:
                kept_clauses.append(clause)
                kept_flags.append(False)
                kept_lbd.append(self._clause_lbd[index])
            elif len(clause) <= 4:
                kept_clauses.append(clause)
                kept_flags.append(True)
                kept_lbd.append(self._clause_lbd[index])
            else:
                long_clauses.append(clause)
                long_lbd.append(self._clause_lbd[index])
        keep_count = int(len(long_clauses) * keep_fraction)
        if keep_count:
            kept_clauses.extend(long_clauses[-keep_count:])
            kept_flags.extend([True] * keep_count)
            kept_lbd.extend(long_lbd[-keep_count:])
        self._clauses = kept_clauses
        self._learned_flags = kept_flags
        self._clause_lbd = kept_lbd
        self._num_learned = sum(kept_flags)
        self._rebuild_watches_and_reasons()

    def _reduce_learned_lbd(self) -> None:
        """LBD-scored learned-clause forgetting (``REPRO_CLAUSE_FORGET``).

        Glue clauses (LBD <= 2) are permanent.  Of the remaining learned
        clauses, the half with the highest LBD is dropped (ties broken by
        age: newer clauses survive).  The trigger limit grows geometrically
        after every reduction attempt, so forgetting stays amortised.
        """
        if self._decision_level() != 0:
            return
        if self._num_learned < self._forget_limit:
            return
        candidate_lbds = [
            self._clause_lbd[index]
            for index in range(len(self._clauses))
            if self._learned_flags[index] and self._clause_lbd[index] > 2
        ]
        if not candidate_lbds:
            self._forget_limit += self._forget_limit // 2
            return
        keep_target = len(candidate_lbds) // 2
        buckets: Dict[int, int] = {}
        for lbd in candidate_lbds:
            buckets[lbd] = buckets.get(lbd, 0) + 1
        max_lbd = max(candidate_lbds)
        # Keep whole LBD buckets from 3 upward while they fit, then fill the
        # remainder from the threshold bucket newest-first — fully integer
        # arithmetic, so the native twin reproduces it exactly.
        threshold = 3
        acc = 0
        while threshold <= max_lbd and acc + buckets.get(threshold, 0) <= keep_target:
            acc += buckets.get(threshold, 0)
            threshold += 1
        remaining = keep_target - acc
        keep_flag = set()
        for index in range(len(self._clauses) - 1, -1, -1):
            if remaining <= 0:
                break
            if self._learned_flags[index] and self._clause_lbd[index] == threshold:
                keep_flag.add(index)
                remaining -= 1
        kept_clauses: List[List[int]] = []
        kept_flags: List[bool] = []
        kept_lbd: List[int] = []
        for index, clause in enumerate(self._clauses):
            lbd = self._clause_lbd[index]
            if (
                not self._learned_flags[index]
                or lbd <= 2
                or lbd < threshold
                or index in keep_flag
            ):
                kept_clauses.append(clause)
                kept_flags.append(self._learned_flags[index])
                kept_lbd.append(lbd)
            else:
                self.forgotten_clauses += 1
        self._clauses = kept_clauses
        self._learned_flags = kept_flags
        self._clause_lbd = kept_lbd
        self._num_learned = sum(kept_flags)
        self._rebuild_watches_and_reasons()
        self._forget_limit += self._forget_limit // 2

    def _rebuild_watches_and_reasons(self) -> None:
        self._watches = {}
        for index, clause in enumerate(self._clauses):
            if len(clause) >= 2:
                self._watches.setdefault(clause[0], []).append(index)
                self._watches.setdefault(clause[1], []).append(index)
        for variable in range(1, self._num_vars + 1):
            if self._reason[variable] is not None:
                self._reason[variable] = None

    # -------------------------------------------------------------- #
    # Decisions
    # -------------------------------------------------------------- #
    def _pick_branch_variable(self) -> Optional[int]:
        # Stale entries are discarded lazily at the top, so on long-lived
        # solvers the heap can accumulate one tuple per unassignment;
        # compact it once it clearly outgrows the variable range.
        if len(self._order_heap) > 64 + 4 * self._num_vars:
            self._rebuild_order_heap()
        heap = self._order_heap
        while heap:
            negated_activity, variable = heap[0]
            if (
                self._assign[variable] != _UNASSIGNED
                or -negated_activity != self._activity[variable]
            ):
                heapq.heappop(heap)
                continue
            return variable
        return None

    # -------------------------------------------------------------- #
    # Main loop
    # -------------------------------------------------------------- #
    def solve(
        self, assumptions: Sequence[int] = (), budget: Optional[SolveBudget] = None
    ) -> SatResult:
        """Solve the current clause database, optionally under assumptions.

        Assumptions are literals tried as the first decisions; a failure
        that traces back to them means *UNSAT under these assumptions* and
        leaves the solver usable for later calls, while a conflict at
        decision level 0 proves the clause database itself unsatisfiable
        (every later call returns UNSAT immediately).

        With a :class:`SolveBudget` the call additionally returns a result
        with ``status == "unknown"`` once any limit is hit (checked at
        conflict events, so the unbudgeted hot path pays a single ``is
        None`` test per conflict).  The solver stays usable afterwards —
        re-solving with a larger budget resumes from the learned clauses
        accumulated so far.
        """
        self.solve_calls += 1
        stats_base = (
            self.conflicts,
            self.decisions,
            self.propagations,
            self.forgotten_clauses,
        )
        for literal in assumptions:
            if literal == 0:
                raise ValueError("0 is not a valid assumption literal")
            self.reserve_vars(abs(literal))
        if faults_enabled() and fault_fires("solver_unknown"):
            self.budget_exhaustions += 1
            self._extra_budget_exhaustions += 1
            return self._unknown_result(stats_base)
        if self._trivially_unsat:
            return self._unsat_result(stats_base)
        if budget is not None and budget.unbounded:
            budget = None
        if self._core is not None:
            return self._solve_native(assumptions, budget, stats_base)
        deadline = None
        if budget is not None and budget.max_seconds is not None:
            deadline = time.monotonic() + budget.max_seconds
        self._backtrack(0)
        # No pending propagation can exist here: add_clause drains the queue
        # after every unit it enqueues, so any level-0 conflict would already
        # have flagged _trivially_unsat (and one surfacing in the main loop
        # below is handled the same way).

        # Geometric restarts (the byte-identical historic default) grow the
        # limit by 1.5x after every restart; reluctant doubling (Luby) walks
        # Knuth's (u, v) sequence 1 1 2 1 1 2 4 ... scaled by LUBY_BASE,
        # revisiting short limits forever instead of committing to ever
        # longer runs.
        luby_u, luby_v = 1, 1
        if self.restart_strategy == "luby":
            restart_limit = self.LUBY_BASE * luby_v
        else:
            restart_limit = 100
        conflicts_since_restart = 0
        assumption_queue = list(assumptions)

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_since_restart += 1
                if self._decision_level() == 0:
                    self._trivially_unsat = True
                    return self._unsat_result(stats_base)
                if budget is not None and self._budget_exhausted(
                    budget, stats_base, deadline
                ):
                    self.budget_exhaustions += 1
                    self._backtrack(0)
                    return self._unknown_result(stats_base)
                learned, backtrack_level, lbd = self._analyze(conflict)
                self._backtrack(backtrack_level)
                if len(learned) == 1:
                    if not self._enqueue(learned[0], None):
                        self._trivially_unsat = True
                        return self._unsat_result(stats_base)
                else:
                    clause_index = self._attach_clause(learned, learned=True, lbd=lbd)
                    self._enqueue(learned[0], clause_index)
                self._decay_activities()
                if conflicts_since_restart >= restart_limit:
                    conflicts_since_restart = 0
                    self.restarts += 1
                    if self.restart_strategy == "luby":
                        if (luby_u & -luby_u) == luby_v:
                            luby_u += 1
                            luby_v = 1
                        else:
                            luby_v <<= 1
                        restart_limit = self.LUBY_BASE * luby_v
                    else:
                        restart_limit = int(restart_limit * 1.5)
                    self._backtrack(0)
                    if self._forget_limit:
                        self._reduce_learned_lbd()
                    else:
                        self._reduce_learned()
                continue

            # Apply pending assumptions as decisions.
            if len(self._trail_lim) < len(assumption_queue):
                literal = assumption_queue[len(self._trail_lim)]
                value = self._literal_value(literal)
                if value == _FALSE:
                    # Failed under the assumptions only; the clause database
                    # may well be satisfiable under other assumptions.
                    return self._unsat_result(stats_base)
                self._trail_lim.append(len(self._trail))
                if value == _UNASSIGNED:
                    self._enqueue(literal, None)
                continue

            variable = self._pick_branch_variable()
            if variable is None:
                return self._sat_result(stats_base)
            self.decisions += 1
            self._trail_lim.append(len(self._trail))
            phase = self._phase[variable]
            self._enqueue(variable if phase else -variable, None)

    def _solve_native(
        self,
        assumptions: Sequence[int],
        budget: Optional[SolveBudget],
        stats_base: Tuple[int, int, int, int],
    ) -> SatResult:
        """Delegate the search to the compiled core (transcript-identical)."""
        max_conflicts = -1
        max_propagations = -1
        max_seconds = -1.0
        if budget is not None:
            if budget.max_conflicts is not None:
                max_conflicts = budget.max_conflicts
            if budget.max_propagations is not None:
                max_propagations = budget.max_propagations
            if budget.max_seconds is not None:
                max_seconds = budget.max_seconds
        status, model = self._core.solve(
            tuple(assumptions), max_conflicts, max_propagations, max_seconds
        )
        self._sync_counters()
        if status == 1:
            return self._sat_result(stats_base, model=model)
        if status == 0:
            return self._unsat_result(stats_base)
        return self._unknown_result(stats_base)

    # -------------------------------------------------------------- #
    # Results / statistics
    # -------------------------------------------------------------- #
    def _budget_exhausted(
        self,
        budget: SolveBudget,
        stats_base: Tuple[int, ...],
        deadline: Optional[float],
    ) -> bool:
        if (
            budget.max_conflicts is not None
            and self.conflicts - stats_base[0] >= budget.max_conflicts
        ):
            return True
        if (
            budget.max_propagations is not None
            and self.propagations - stats_base[2] >= budget.max_propagations
        ):
            return True
        if deadline is not None and time.monotonic() >= deadline:
            return True
        return False

    def stats(self) -> Dict[str, int]:
        """Cumulative statistics over the lifetime of this solver."""
        return {
            "solve_calls": self.solve_calls,
            "conflicts": self.conflicts,
            "decisions": self.decisions,
            "propagations": self.propagations,
            "restarts": self.restarts,
            "budget_exhaustions": self.budget_exhaustions,
            "num_vars": self._num_vars,
            "num_clauses": self._num_problem_clauses,
            "learned_clauses": self._num_learned,
            "forgotten_clauses": self.forgotten_clauses,
        }

    def _note_solve(self, status: str, stats_base: Tuple[int, ...]) -> None:
        obs_metrics.counter("repro_solver_solve_calls_total", status=status)
        deltas = (
            ("repro_solver_conflicts_total", self.conflicts - stats_base[0]),
            ("repro_solver_decisions_total", self.decisions - stats_base[1]),
            ("repro_solver_propagations_total", self.propagations - stats_base[2]),
            (
                "repro_solver_forgotten_clauses_total",
                self.forgotten_clauses - stats_base[3] if len(stats_base) > 3 else 0,
            ),
        )
        for name, delta in deltas:
            if delta:
                obs_metrics.counter(name, delta)

    def _sat_result(
        self,
        stats_base: Tuple[int, ...],
        model: Optional[Dict[int, bool]] = None,
    ) -> SatResult:
        self._note_solve("sat", stats_base)
        if model is None:
            model = {
                variable: self._assign[variable] == _TRUE
                for variable in range(1, self._num_vars + 1)
                if self._assign[variable] != _UNASSIGNED
            }
        return SatResult(
            True,
            model=model,
            conflicts=self.conflicts - stats_base[0],
            decisions=self.decisions - stats_base[1],
            propagations=self.propagations - stats_base[2],
        )

    def _unsat_result(self, stats_base: Tuple[int, ...]) -> SatResult:
        self._note_solve("unsat", stats_base)
        return SatResult(
            False,
            conflicts=self.conflicts - stats_base[0],
            decisions=self.decisions - stats_base[1],
            propagations=self.propagations - stats_base[2],
        )

    def _unknown_result(self, stats_base: Tuple[int, ...]) -> SatResult:
        self._note_solve("unknown", stats_base)
        return SatResult(
            False,
            status="unknown",
            conflicts=self.conflicts - stats_base[0],
            decisions=self.decisions - stats_base[1],
            propagations=self.propagations - stats_base[2],
        )


def solve(
    formula: Cnf,
    assumptions: Sequence[int] = (),
    budget: Optional[SolveBudget] = None,
) -> SatResult:
    """Convenience wrapper: build a solver and solve the formula once."""
    return SatSolver(formula).solve(assumptions, budget=budget)

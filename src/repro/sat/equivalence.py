"""Miter-based combinational equivalence checking.

Used to validate that synthesis and technology mapping preserve function
(the role ModelSim plays in the paper's Section IV) and as a building block
of the SAT-based adversary in :mod:`repro.attacks.decamouflage`.

Two entry points are one-shot functions (:func:`check_netlist_equivalence`,
:func:`check_netlist_function`); :class:`EquivalenceChecker` is the reusable
variant: it encodes a netlist **once** into a persistent incremental solver
and checks it against any number of candidate functions, each behind a
fresh activation literal.  The activation literal guards the "some output
differs" miter clause, so a finished check is retired with one permanent
unit clause and its learned clauses keep benefiting later checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..logic.boolfunc import BoolFunction
from ..logic.truthtable import TruthTable
from ..netlist.netlist import Netlist
from .cnf import Cnf
from .solver import SatSolver
from .tseitin import encode_function, encode_netlist

__all__ = [
    "EquivalenceResult",
    "add_difference_miter",
    "EquivalenceChecker",
    "check_netlist_equivalence",
    "check_netlist_function",
]


@dataclass
class EquivalenceResult:
    """Outcome of an equivalence check."""

    equivalent: bool
    counterexample: Optional[Dict[str, int]] = None

    def __bool__(self) -> bool:
        return self.equivalent


def add_difference_miter(
    cnf: Cnf, pairs: List[Tuple[int, int]], activation: Optional[int] = None
) -> None:
    """Constrain that at least one output pair differs.

    With an ``activation`` literal the difference constraint only applies
    while that literal is assumed true, which lets several miters share one
    incremental solver.
    """
    difference_literals = [] if activation is None else [-activation]
    for literal_a, literal_b in pairs:
        diff = cnf.new_var()
        # diff -> (a xor b)  and  (a xor b) -> diff
        cnf.add_clause([-diff, literal_a, literal_b])
        cnf.add_clause([-diff, -literal_a, -literal_b])
        cnf.add_clause([diff, -literal_a, literal_b])
        cnf.add_clause([diff, literal_a, -literal_b])
        difference_literals.append(diff)
    cnf.add_clause(difference_literals)


class EquivalenceChecker:
    """Reusable miter checker: one netlist, many candidate functions.

    The netlist is Tseitin-encoded once into a persistent incremental
    solver.  Every :meth:`check_function` call encodes only the candidate's
    reference outputs plus an activation-guarded miter, solves under the
    activation assumption, and then permanently disables that miter — the
    circuit encoding and everything learned about it are shared across
    checks.
    """

    def __init__(
        self,
        netlist: Netlist,
        cell_functions: Optional[Mapping[str, TruthTable]] = None,
    ):
        self._netlist = netlist
        self._cnf = Cnf()
        self._solver = SatSolver(self._cnf, follow=True)
        self._net_vars = encode_netlist(
            self._cnf, netlist, prefix="n.", cell_functions=cell_functions
        )
        self._input_literals = [self._net_vars[net] for net in netlist.primary_inputs]
        self._checks = 0

    def check_function(self, function: BoolFunction) -> EquivalenceResult:
        """Check that the netlist implements ``function`` (pin-by-position)."""
        netlist = self._netlist
        if len(netlist.primary_inputs) != function.num_inputs:
            raise ValueError("netlist and function have different numbers of inputs")
        if len(netlist.primary_outputs) != function.num_outputs:
            raise ValueError("netlist and function have different numbers of outputs")

        self._checks += 1
        activation = self._cnf.new_var(f"miter.enable.{self._checks}")
        pairs: List[Tuple[int, int]] = []
        for index, net in enumerate(netlist.primary_outputs):
            reference = self._cnf.new_var(f"ref.{self._checks}.o{index}")
            encode_function(self._cnf, function.output(index), self._input_literals,
                            reference)
            pairs.append((self._net_vars[net], reference))
        add_difference_miter(self._cnf, pairs, activation=activation)

        result = self._solver.solve(assumptions=[activation])
        # Retire this miter; later checks must not be forced to differ here.
        self._cnf.add_clause([-activation])
        if not result.satisfiable:
            return EquivalenceResult(True)
        counterexample = {
            net: int(result.model.get(abs(self._net_vars[net]), False))
            for net in netlist.primary_inputs
        }
        return EquivalenceResult(False, counterexample=counterexample)

    def solver_stats(self) -> Dict[str, int]:
        """Cumulative statistics of the persistent solver."""
        return self._solver.stats()


def check_netlist_equivalence(
    netlist_a: Netlist,
    netlist_b: Netlist,
    cell_functions_a: Optional[Mapping[str, TruthTable]] = None,
    cell_functions_b: Optional[Mapping[str, TruthTable]] = None,
) -> EquivalenceResult:
    """Check that two netlists implement the same function.

    Primary inputs are matched by position, as are primary outputs; the two
    netlists must have the same interface sizes.
    """
    if len(netlist_a.primary_inputs) != len(netlist_b.primary_inputs):
        raise ValueError("netlists have different numbers of primary inputs")
    if len(netlist_a.primary_outputs) != len(netlist_b.primary_outputs):
        raise ValueError("netlists have different numbers of primary outputs")

    cnf = Cnf()
    vars_a = encode_netlist(cnf, netlist_a, prefix="a.", cell_functions=cell_functions_a)
    shared_inputs = {
        net_b: vars_a[net_a]
        for net_a, net_b in zip(netlist_a.primary_inputs, netlist_b.primary_inputs)
    }
    vars_b = encode_netlist(
        cnf, netlist_b, prefix="b.", input_literals=shared_inputs,
        cell_functions=cell_functions_b,
    )
    pairs = [
        (vars_a[net_a], vars_b[net_b])
        for net_a, net_b in zip(netlist_a.primary_outputs, netlist_b.primary_outputs)
    ]
    add_difference_miter(cnf, pairs)

    result = SatSolver(cnf).solve()
    if not result.satisfiable:
        return EquivalenceResult(True)
    counterexample = {
        net: int(result.model.get(abs(vars_a[net]), False))
        for net in netlist_a.primary_inputs
    }
    return EquivalenceResult(False, counterexample=counterexample)


def check_netlist_function(
    netlist: Netlist,
    function: BoolFunction,
    cell_functions: Optional[Mapping[str, TruthTable]] = None,
) -> EquivalenceResult:
    """Check that a netlist implements a given multi-output function.

    Netlist primary input ``k`` corresponds to function variable ``k`` and
    primary output ``k`` to function output ``k``.  One-shot wrapper around
    :class:`EquivalenceChecker`.
    """
    return EquivalenceChecker(netlist, cell_functions=cell_functions).check_function(
        function
    )

"""Miter-based combinational equivalence checking with a fuzz fast path.

Used to validate that synthesis and technology mapping preserve function
(the role ModelSim plays in the paper's Section IV) and as a building block
of the SAT-based adversary in :mod:`repro.attacks.decamouflage`.

Two entry points are one-shot functions (:func:`check_netlist_equivalence`,
:func:`check_netlist_function`); :class:`EquivalenceChecker` is the reusable
variant: it encodes a netlist **once** into a persistent incremental solver
and checks it against any number of candidate functions, each behind a
fresh activation literal.  The activation literal guards the "some output
differs" miter clause, so a finished check is retired with one permanent
unit clause and its learned clauses keep benefiting later checks.

Fuzz-before-SAT
---------------

With the pre-filter enabled (the default; pass ``prefilter=False`` or set
``REPRO_FUZZ=0`` to opt out), every check first runs a packed word-parallel
simulation pass (:mod:`repro.sim.prefilter`): exhaustive — and therefore a
*complete decision* — for small input counts, otherwise replay-buffer words
followed by seeded random patterns.  A mismatch refutes the check with a
genuine counterexample and the solver is never consulted (the checker even
defers Tseitin-encoding the netlist until the first SAT fallback actually
needs it); counterexamples found by either path feed the shared replay
buffer so later checks re-try the killer patterns first.  Verdicts are
identical with the pre-filter on or off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..logic.boolfunc import BoolFunction
from ..logic.truthtable import TruthTable
from ..netlist.netlist import Netlist
from ..sim.prefilter import (
    fuzz_enabled,
    fuzz_netlist_vs_function,
    fuzz_netlist_vs_netlist,
)
from ..sim.patterns import ReplayBuffer
from .cnf import Cnf
from .solver import SatSolver, SolveBudget, SolveBudgetExceeded
from .tseitin import encode_function, encode_netlist

__all__ = [
    "EquivalenceResult",
    "add_difference_miter",
    "EquivalenceChecker",
    "check_netlist_equivalence",
    "check_netlist_function",
]

# An equivalence verdict feeds verification decisions that are *persisted*
# (stitched-netlist checks, campaign artifacts), so an UNKNOWN solver result
# must never be coerced into "not equivalent".  Budgeted checks raise
# SolveBudgetExceeded instead; callers either escalate the budget or let the
# campaign layer classify the failure as transient and retry.


def _raise_budget_exceeded(context: str) -> None:
    raise SolveBudgetExceeded(
        f"{context} exhausted its solve budget before reaching a verdict"
    )


@dataclass
class EquivalenceResult:
    """Outcome of an equivalence check."""

    equivalent: bool
    counterexample: Optional[Dict[str, int]] = None
    #: True when the verdict came from the simulation pre-filter (no SAT).
    by_simulation: bool = False

    def __bool__(self) -> bool:
        return self.equivalent


def add_difference_miter(
    cnf: Cnf, pairs: List[Tuple[int, int]], activation: Optional[int] = None
) -> None:
    """Constrain that at least one output pair differs.

    With an ``activation`` literal the difference constraint only applies
    while that literal is assumed true, which lets several miters share one
    incremental solver.
    """
    difference_literals = [] if activation is None else [-activation]
    for literal_a, literal_b in pairs:
        diff = cnf.new_var()
        # diff -> (a xor b)  and  (a xor b) -> diff
        cnf.add_clause([-diff, literal_a, literal_b])
        cnf.add_clause([-diff, -literal_a, -literal_b])
        cnf.add_clause([diff, -literal_a, literal_b])
        cnf.add_clause([diff, literal_a, -literal_b])
        difference_literals.append(diff)
    cnf.add_clause(difference_literals)


def _word_counterexample(netlist: Netlist, word: int) -> Dict[str, int]:
    """Express a counterexample input word as a net -> value mapping."""
    return {
        net: (word >> index) & 1
        for index, net in enumerate(netlist.primary_inputs)
    }


class EquivalenceChecker:
    """Reusable miter checker: one netlist, many candidate functions.

    The netlist is Tseitin-encoded once (lazily, on the first check the
    fuzz pre-filter cannot decide) into a persistent incremental solver.
    Every :meth:`check_function` call encodes only the candidate's reference
    outputs plus an activation-guarded miter, solves under the activation
    assumption, and then permanently disables that miter — the circuit
    encoding and everything learned about it are shared across checks.
    """

    def __init__(
        self,
        netlist: Netlist,
        cell_functions: Optional[Mapping[str, TruthTable]] = None,
        prefilter: Optional[bool] = None,
        fuzz_patterns: int = 64,
        fuzz_seed: int = 1,
        budget: Optional[SolveBudget] = None,
    ):
        self._netlist = netlist
        self._cell_functions = dict(cell_functions) if cell_functions else None
        self._budget = budget
        self._prefilter = fuzz_enabled(prefilter)
        self._fuzz_patterns = fuzz_patterns
        self._fuzz_seed = fuzz_seed
        self._replay = ReplayBuffer()
        self._simulator = None
        #: Cached exhaustive output lanes (candidate-independent, small n).
        self._exhaustive_lanes: Optional[List[int]] = None
        self._cnf: Optional[Cnf] = None
        self._solver: Optional[SatSolver] = None
        self._net_vars: Dict[str, int] = {}
        self._input_literals: List[int] = []
        self._checks = 0
        self._fuzz_refutations = 0
        self._fuzz_proofs = 0

    def _ensure_encoded(self) -> SatSolver:
        if self._solver is not None:
            return self._solver
        self._cnf = Cnf()
        self._solver = SatSolver(self._cnf, follow=True)
        self._net_vars = encode_netlist(
            self._cnf, self._netlist, prefix="n.", cell_functions=self._cell_functions
        )
        self._input_literals = [
            self._net_vars[net] for net in self._netlist.primary_inputs
        ]
        return self._solver

    def _fuzz(self, function: BoolFunction):
        from ..sim.engine import NetlistSimulator
        from ..sim.patterns import PatternBatch
        from ..sim.prefilter import FUZZ_EXHAUSTIVE_LIMIT

        if self._simulator is None:
            self._simulator = NetlistSimulator(
                self._netlist, cell_functions=self._cell_functions
            )
        num_inputs = len(self._netlist.primary_inputs)
        if num_inputs <= FUZZ_EXHAUSTIVE_LIMIT and self._exhaustive_lanes is None:
            # The exhaustive lanes are candidate-independent: simulate once,
            # then every later check is a handful of XOR/compare operations.
            self._exhaustive_lanes = self._simulator.output_lanes(
                PatternBatch.exhaustive(num_inputs)
            )
        return fuzz_netlist_vs_function(
            self._netlist,
            function,
            patterns=self._fuzz_patterns,
            seed=self._fuzz_seed + self._checks,
            replay=self._replay,
            simulator=self._simulator,
            exhaustive_lanes=self._exhaustive_lanes,
        )

    def check_function(self, function: BoolFunction) -> EquivalenceResult:
        """Check that the netlist implements ``function`` (pin-by-position)."""
        netlist = self._netlist
        if len(netlist.primary_inputs) != function.num_inputs:
            raise ValueError("netlist and function have different numbers of inputs")
        if len(netlist.primary_outputs) != function.num_outputs:
            raise ValueError("netlist and function have different numbers of outputs")

        self._checks += 1
        if self._prefilter:
            outcome = self._fuzz(function)
            if outcome.refuted:
                self._fuzz_refutations += 1
                return EquivalenceResult(
                    False,
                    counterexample=_word_counterexample(netlist, outcome.counterexample),
                    by_simulation=True,
                )
            if outcome.proven:
                self._fuzz_proofs += 1
                return EquivalenceResult(True, by_simulation=True)

        solver = self._ensure_encoded()
        activation = self._cnf.new_var(f"miter.enable.{self._checks}")
        pairs: List[Tuple[int, int]] = []
        for index, net in enumerate(netlist.primary_outputs):
            reference = self._cnf.new_var(f"ref.{self._checks}.o{index}")
            encode_function(self._cnf, function.output(index), self._input_literals,
                            reference)
            pairs.append((self._net_vars[net], reference))
        add_difference_miter(self._cnf, pairs, activation=activation)

        result = solver.solve(assumptions=[activation], budget=self._budget)
        # Retire this miter; later checks must not be forced to differ here.
        self._cnf.add_clause([-activation])
        if result.unknown:
            _raise_budget_exceeded("equivalence check (netlist vs function)")
        if not result.satisfiable:
            return EquivalenceResult(True)
        counterexample = {}
        word = 0
        for index, net in enumerate(netlist.primary_inputs):
            value = int(result.model.get(abs(self._net_vars[net]), False))
            counterexample[net] = value
            word |= value << index
        self._replay.add(word)
        return EquivalenceResult(False, counterexample=counterexample)

    def solver_stats(self) -> Dict[str, int]:
        """Cumulative statistics of the persistent solver.

        Includes the pre-filter counters; the solver-side entries are zero
        until a check actually falls back to SAT (the encoding is lazy), so
        every key is always present.
        """
        stats: Dict[str, int] = {
            "solve_calls": 0,
            "conflicts": 0,
            "decisions": 0,
            "propagations": 0,
            "num_vars": 0,
            "num_clauses": 0,
            "learned_clauses": 0,
        }
        if self._solver is not None:
            stats.update(self._solver.stats())
        stats["fuzz_refutations"] = self._fuzz_refutations
        stats["fuzz_proofs"] = self._fuzz_proofs
        return stats


def check_netlist_equivalence(
    netlist_a: Netlist,
    netlist_b: Netlist,
    cell_functions_a: Optional[Mapping[str, TruthTable]] = None,
    cell_functions_b: Optional[Mapping[str, TruthTable]] = None,
    prefilter: Optional[bool] = None,
    fuzz_patterns: Optional[int] = None,
    jobs: int = 1,
    budget: Optional[SolveBudget] = None,
) -> EquivalenceResult:
    """Check that two netlists implement the same function.

    Primary inputs are matched by position, as are primary outputs; the two
    netlists must have the same interface sizes.  With the fuzz pre-filter
    enabled, a packed simulation pass over a shared pattern batch refutes
    (or, for small input counts, fully decides) the check before any CNF is
    built; ``fuzz_patterns`` widens that batch for wide (e.g. stitched
    windowed) netlists and ``jobs`` shards it over the worker pool — the
    verdict is identical for every setting.
    """
    if len(netlist_a.primary_inputs) != len(netlist_b.primary_inputs):
        raise ValueError("netlists have different numbers of primary inputs")
    if len(netlist_a.primary_outputs) != len(netlist_b.primary_outputs):
        raise ValueError("netlists have different numbers of primary outputs")

    if fuzz_enabled(prefilter):
        from ..sim.prefilter import DEFAULT_FUZZ_PATTERNS

        outcome = fuzz_netlist_vs_netlist(
            netlist_a, netlist_b, cell_functions_a, cell_functions_b,
            patterns=fuzz_patterns or DEFAULT_FUZZ_PATTERNS, jobs=jobs,
        )
        if outcome.refuted:
            return EquivalenceResult(
                False,
                counterexample=_word_counterexample(netlist_a, outcome.counterexample),
                by_simulation=True,
            )
        if outcome.proven:
            return EquivalenceResult(True, by_simulation=True)

    cnf = Cnf()
    vars_a = encode_netlist(cnf, netlist_a, prefix="a.", cell_functions=cell_functions_a)
    shared_inputs = {
        net_b: vars_a[net_a]
        for net_a, net_b in zip(netlist_a.primary_inputs, netlist_b.primary_inputs)
    }
    vars_b = encode_netlist(
        cnf, netlist_b, prefix="b.", input_literals=shared_inputs,
        cell_functions=cell_functions_b,
    )
    pairs = [
        (vars_a[net_a], vars_b[net_b])
        for net_a, net_b in zip(netlist_a.primary_outputs, netlist_b.primary_outputs)
    ]
    add_difference_miter(cnf, pairs)

    result = SatSolver(cnf).solve(budget=budget)
    if result.unknown:
        _raise_budget_exceeded("equivalence check (netlist vs netlist)")
    if not result.satisfiable:
        return EquivalenceResult(True)
    counterexample = {
        net: int(result.model.get(abs(vars_a[net]), False))
        for net in netlist_a.primary_inputs
    }
    return EquivalenceResult(False, counterexample=counterexample)


def check_netlist_function(
    netlist: Netlist,
    function: BoolFunction,
    cell_functions: Optional[Mapping[str, TruthTable]] = None,
    prefilter: Optional[bool] = None,
    budget: Optional[SolveBudget] = None,
) -> EquivalenceResult:
    """Check that a netlist implements a given multi-output function.

    Netlist primary input ``k`` corresponds to function variable ``k`` and
    primary output ``k`` to function output ``k``.  One-shot wrapper around
    :class:`EquivalenceChecker`; ``prefilter`` enables the fuzz-before-SAT
    fast path.  A budgeted check raises :class:`SolveBudgetExceeded` when
    the verdict cannot be reached within the budget.
    """
    return EquivalenceChecker(
        netlist, cell_functions=cell_functions, prefilter=prefilter, budget=budget
    ).check_function(function)

"""Miter-based combinational equivalence checking.

Used to validate that synthesis and technology mapping preserve function
(the role ModelSim plays in the paper's Section IV) and as a building block
of the SAT-based adversary in :mod:`repro.attacks.decamouflage`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..logic.boolfunc import BoolFunction
from ..logic.truthtable import TruthTable
from ..netlist.netlist import Netlist
from .cnf import Cnf
from .solver import SatSolver
from .tseitin import encode_function, encode_netlist

__all__ = ["EquivalenceResult", "check_netlist_equivalence", "check_netlist_function"]


@dataclass
class EquivalenceResult:
    """Outcome of an equivalence check."""

    equivalent: bool
    counterexample: Optional[Dict[str, int]] = None

    def __bool__(self) -> bool:
        return self.equivalent


def _add_miter(cnf: Cnf, pairs: List[Tuple[int, int]]) -> None:
    """Constrain that at least one output pair differs."""
    difference_literals = []
    for literal_a, literal_b in pairs:
        diff = cnf.new_var()
        # diff -> (a xor b)  and  (a xor b) -> diff
        cnf.add_clause([-diff, literal_a, literal_b])
        cnf.add_clause([-diff, -literal_a, -literal_b])
        cnf.add_clause([diff, -literal_a, literal_b])
        cnf.add_clause([diff, literal_a, -literal_b])
        difference_literals.append(diff)
    cnf.add_clause(difference_literals)


def check_netlist_equivalence(
    netlist_a: Netlist,
    netlist_b: Netlist,
    cell_functions_a: Optional[Mapping[str, TruthTable]] = None,
    cell_functions_b: Optional[Mapping[str, TruthTable]] = None,
) -> EquivalenceResult:
    """Check that two netlists implement the same function.

    Primary inputs are matched by position, as are primary outputs; the two
    netlists must have the same interface sizes.
    """
    if len(netlist_a.primary_inputs) != len(netlist_b.primary_inputs):
        raise ValueError("netlists have different numbers of primary inputs")
    if len(netlist_a.primary_outputs) != len(netlist_b.primary_outputs):
        raise ValueError("netlists have different numbers of primary outputs")

    cnf = Cnf()
    vars_a = encode_netlist(cnf, netlist_a, prefix="a.", cell_functions=cell_functions_a)
    shared_inputs = {
        net_b: vars_a[net_a]
        for net_a, net_b in zip(netlist_a.primary_inputs, netlist_b.primary_inputs)
    }
    vars_b = encode_netlist(
        cnf, netlist_b, prefix="b.", input_literals=shared_inputs,
        cell_functions=cell_functions_b,
    )
    pairs = [
        (vars_a[net_a], vars_b[net_b])
        for net_a, net_b in zip(netlist_a.primary_outputs, netlist_b.primary_outputs)
    ]
    _add_miter(cnf, pairs)

    result = SatSolver(cnf).solve()
    if not result.satisfiable:
        return EquivalenceResult(True)
    counterexample = {
        net: int(result.model.get(abs(vars_a[net]), False))
        for net in netlist_a.primary_inputs
    }
    return EquivalenceResult(False, counterexample=counterexample)


def check_netlist_function(
    netlist: Netlist,
    function: BoolFunction,
    cell_functions: Optional[Mapping[str, TruthTable]] = None,
) -> EquivalenceResult:
    """Check that a netlist implements a given multi-output function.

    Netlist primary input ``k`` corresponds to function variable ``k`` and
    primary output ``k`` to function output ``k``.
    """
    if len(netlist.primary_inputs) != function.num_inputs:
        raise ValueError("netlist and function have different numbers of inputs")
    if len(netlist.primary_outputs) != function.num_outputs:
        raise ValueError("netlist and function have different numbers of outputs")

    cnf = Cnf()
    net_vars = encode_netlist(cnf, netlist, prefix="n.", cell_functions=cell_functions)
    input_literals = [net_vars[net] for net in netlist.primary_inputs]
    pairs: List[Tuple[int, int]] = []
    for index, net in enumerate(netlist.primary_outputs):
        reference = cnf.new_var(f"ref.o{index}")
        encode_function(cnf, function.output(index), input_literals, reference)
        pairs.append((net_vars[net], reference))
    _add_miter(cnf, pairs)

    result = SatSolver(cnf).solve()
    if not result.satisfiable:
        return EquivalenceResult(True)
    counterexample = {
        net: int(result.model.get(abs(net_vars[net]), False))
        for net in netlist.primary_inputs
    }
    return EquivalenceResult(False, counterexample=counterexample)

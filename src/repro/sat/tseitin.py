"""Tseitin encoding of circuits into CNF.

Two encoders are provided:

* :func:`encode_function` — constrain ``output literal == f(input literals)``
  for an arbitrary small truth table, using ISOP covers of the on-set and
  off-set (this is what the decamouflaging attack uses to encode each
  camouflaged cell under each candidate configuration);
* :func:`encode_netlist` — encode a mapped netlist gate by gate, returning
  the variable of every net.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Mapping, Optional, Sequence

from ..logic.isop import isop
from ..logic.truthtable import TruthTable
from ..netlist.netlist import CONST0_NET, CONST1_NET, Netlist
from .cnf import Cnf

__all__ = [
    "encode_function",
    "encode_guarded_function",
    "encode_camouflaged_copy",
    "encode_netlist",
    "equality_clauses",
    "add_exactly_one",
]


def add_exactly_one(cnf: Cnf, literals: Sequence[int]) -> None:
    """Constrain exactly one of ``literals`` to be true (pairwise encoding).

    This is the selector constraint of the decamouflaging attacks: every
    camouflaged instance is configured with exactly one plausible function.
    """
    cnf.add_clause(list(literals))
    for first, second in itertools.combinations(literals, 2):
        cnf.add_clause([-first, -second])


def encode_guarded_function(
    cnf: Cnf,
    selector: Optional[int],
    function: TruthTable,
    input_literals: Sequence[int],
    output_literal: int,
) -> None:
    """Add clauses for ``selector -> (output_literal == function(inputs))``.

    With ``selector=None`` the equivalence is unconditional.  The inputs may
    be arbitrary literals (constants or other net variables); the guarded
    implication is expressed cube-wise from the ISOP covers of the on-set
    and off-set.  Both SAT attacks use this to encode each camouflaged cell
    under each candidate configuration.
    """
    if function.num_vars != len(input_literals):
        raise ValueError("one input literal per function variable is required")
    guard = [] if selector is None else [-selector]
    if function.is_constant_zero():
        cnf.add_clause(guard + [-output_literal])
        return
    if function.is_constant_one():
        cnf.add_clause(guard + [output_literal])
        return
    for cube in isop(function):
        clause = list(guard) + [output_literal]
        for variable, positive in cube.literals():
            literal = input_literals[variable]
            clause.append(-literal if positive else literal)
        cnf.add_clause(clause)
    for cube in isop(~function):
        clause = list(guard) + [-output_literal]
        for variable, positive in cube.literals():
            literal = input_literals[variable]
            clause.append(-literal if positive else literal)
        cnf.add_clause(clause)


def encode_function(
    cnf: Cnf,
    function: TruthTable,
    input_literals: Sequence[int],
    output_literal: int,
) -> None:
    """Add clauses enforcing ``output_literal <-> function(input_literals)``.

    Constants and functions of any arity up to the practical cube-cover size
    are supported; inputs may be arbitrary literals (not just variables).
    """
    encode_guarded_function(cnf, None, function, input_literals, output_literal)


def encode_camouflaged_copy(
    cnf: Cnf,
    netlist: Netlist,
    order: Sequence,
    plausible: Mapping[str, Sequence[TruthTable]],
    selectors: Mapping,
    input_literals: Mapping[str, int],
) -> Dict[str, int]:
    """Encode one evaluation copy of a partially camouflaged netlist.

    ``order`` is the netlist's topological instance order; camouflaged
    instances (keys of ``plausible``) are encoded once per candidate
    function, guarded by ``selectors[(instance_name, candidate_index)]``,
    while ordinary instances use their library function unconditionally.
    Returns the net -> literal map of this copy (inputs included).  Shared
    by both SAT attacks, which differ only in how inputs and selectors are
    chosen per copy.
    """
    net_literal: Dict[str, int] = dict(input_literals)
    for instance in order:
        output_var = cnf.new_var()
        inputs = [net_literal[net] for net in instance.inputs]
        functions = plausible.get(instance.name)
        if functions is None:
            encode_guarded_function(
                cnf, None, netlist.library[instance.cell].function,
                inputs, output_var,
            )
        else:
            for index, function in enumerate(functions):
                encode_guarded_function(
                    cnf, selectors[(instance.name, index)], function,
                    inputs, output_var,
                )
        net_literal[instance.output] = output_var
    return net_literal


def equality_clauses(cnf: Cnf, literal_a: int, literal_b: int) -> None:
    """Add clauses enforcing ``literal_a == literal_b``."""
    cnf.add_clause([-literal_a, literal_b])
    cnf.add_clause([literal_a, -literal_b])


def encode_netlist(
    cnf: Cnf,
    netlist: Netlist,
    prefix: str = "",
    input_literals: Optional[Mapping[str, int]] = None,
    cell_functions: Optional[Mapping[str, TruthTable]] = None,
) -> Dict[str, int]:
    """Encode a netlist into the CNF; return the variable of every net.

    ``input_literals`` allows sharing primary-input variables with an
    already-encoded circuit (for miters); ``cell_functions`` overrides the
    function of individual instances, exactly like the simulator does.
    """
    net_vars: Dict[str, int] = {}

    constant_true = cnf.new_var(f"{prefix}const1" if prefix else None)
    cnf.add_clause([constant_true])
    net_vars[CONST1_NET] = constant_true
    net_vars[CONST0_NET] = -constant_true

    for net in netlist.primary_inputs:
        if input_literals is not None and net in input_literals:
            net_vars[net] = input_literals[net]
        else:
            net_vars[net] = cnf.new_var(f"{prefix}{net}" if prefix else None)

    for instance in netlist.topological_order():
        function = None
        if cell_functions is not None:
            function = cell_functions.get(instance.name)
        if function is None:
            function = netlist.library[instance.cell].function
        output_var = cnf.new_var(f"{prefix}{instance.output}" if prefix else None)
        net_vars[instance.output] = output_var
        inputs = [net_vars[net] for net in instance.inputs]
        encode_function(cnf, function, inputs, output_var)

    for net in netlist.primary_outputs:
        if net not in net_vars:
            raise ValueError(f"primary output {net!r} is undriven")
    return net_vars

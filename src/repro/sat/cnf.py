"""CNF formulas.

Variables are positive integers; literals are non-zero integers where a
negative value denotes the complement (the DIMACS convention).  The class is
a thin container used by the Tseitin encoder and the CDCL solver, with
DIMACS import/export for interoperability and debugging.

A formula can have *listeners* attached (see :meth:`Cnf.attach`): every
variable allocation and clause addition is forwarded to them.  This is how a
live :class:`~repro.sat.solver.SatSolver` follows a growing formula
incrementally — the Cnf stays the readable record (names, DIMACS export)
while the solver ingests each addition as it happens.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["Cnf"]


class Cnf:
    """A conjunction of clauses over integer variables."""

    def __init__(self, num_vars: int = 0):
        if num_vars < 0:
            raise ValueError("num_vars must be non-negative")
        self.num_vars = num_vars
        self.clauses: List[Tuple[int, ...]] = []
        self._names: Dict[str, int] = {}
        self._listeners: List[object] = []

    # -------------------------------------------------------------- #
    # Listeners (incremental solving)
    # -------------------------------------------------------------- #
    def attach(self, listener: object) -> None:
        """Attach a listener notified of every new variable and clause.

        A listener provides ``on_new_var(variable)`` and ``on_clause(clause)``
        callbacks; :class:`~repro.sat.solver.SatSolver` implements both so it
        can follow this formula as it grows.
        """
        if listener not in self._listeners:
            self._listeners.append(listener)

    def detach(self, listener: object) -> None:
        """Remove a previously attached listener (no-op when absent)."""
        if listener in self._listeners:
            self._listeners.remove(listener)

    # -------------------------------------------------------------- #
    # Variable management
    # -------------------------------------------------------------- #
    def new_var(self, name: Optional[str] = None) -> int:
        """Allocate a fresh variable, optionally registering a name for it."""
        self.num_vars += 1
        variable = self.num_vars
        if name is not None:
            if name in self._names:
                raise ValueError(f"variable name {name!r} already used")
            self._names[name] = variable
        for listener in self._listeners:
            listener.on_new_var(variable)
        return variable

    def var(self, name: str) -> int:
        """Look up a named variable."""
        try:
            return self._names[name]
        except KeyError as exc:
            raise KeyError(f"no variable named {name!r}") from exc

    def has_var(self, name: str) -> bool:
        """Return True if a variable with that name exists."""
        return name in self._names

    def names(self) -> Dict[str, int]:
        """Return a copy of the name -> variable mapping."""
        return dict(self._names)

    # -------------------------------------------------------------- #
    # Clause management
    # -------------------------------------------------------------- #
    def add_clause(self, literals: Iterable[int]) -> None:
        """Add a clause (an iterable of non-zero literals)."""
        clause = tuple(literals)
        if not clause:
            # An empty clause makes the formula trivially unsatisfiable; keep
            # it so the solver reports UNSAT rather than silently dropping it.
            self.clauses.append(clause)
            for listener in self._listeners:
                listener.on_clause(clause)
            return
        for literal in clause:
            if literal == 0:
                raise ValueError("0 is not a valid literal")
            if abs(literal) > self.num_vars:
                raise ValueError(
                    f"literal {literal} references a variable beyond num_vars={self.num_vars}"
                )
        self.clauses.append(clause)
        for listener in self._listeners:
            listener.on_clause(clause)

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> None:
        """Add several clauses."""
        for clause in clauses:
            self.add_clause(clause)

    def extend_unit(self, literal: int) -> None:
        """Add a unit clause."""
        self.add_clause([literal])

    @property
    def num_clauses(self) -> int:
        """Number of clauses."""
        return len(self.clauses)

    # -------------------------------------------------------------- #
    # DIMACS
    # -------------------------------------------------------------- #
    def to_dimacs(self) -> str:
        """Serialise to DIMACS CNF text."""
        lines = [f"p cnf {self.num_vars} {len(self.clauses)}"]
        for clause in self.clauses:
            lines.append(" ".join(str(literal) for literal in clause) + " 0")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_dimacs(cls, text: str) -> "Cnf":
        """Parse DIMACS CNF text."""
        formula: Optional[Cnf] = None
        pending: List[int] = []
        for raw_line in text.splitlines():
            line = raw_line.strip()
            if not line or line.startswith("c"):
                continue
            if line.startswith("p"):
                parts = line.split()
                if len(parts) != 4 or parts[1] != "cnf":
                    raise ValueError(f"malformed problem line {line!r}")
                formula = cls(int(parts[2]))
                continue
            if formula is None:
                raise ValueError("clause encountered before the problem line")
            for token in line.split():
                value = int(token)
                if value == 0:
                    formula.add_clause(pending)
                    pending = []
                else:
                    pending.append(value)
        if formula is None:
            raise ValueError("no problem line found")
        if pending:
            formula.add_clause(pending)
        return formula

    def __repr__(self) -> str:
        return f"Cnf(vars={self.num_vars}, clauses={len(self.clauses)})"

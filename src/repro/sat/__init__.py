"""SAT substrate: CNF, CDCL solver, Tseitin encoding, equivalence checking."""

from .cnf import Cnf
from .equivalence import (
    EquivalenceResult,
    EquivalenceChecker,
    check_netlist_equivalence,
    check_netlist_function,
)
from .solver import (
    BUDGET_ENV_VAR,
    RESTART_ENV_VAR,
    RESTART_STRATEGIES,
    SatResult,
    SatSolver,
    SolveBudget,
    SolveBudgetExceeded,
    solve,
)
from .tseitin import encode_function, encode_netlist, equality_clauses

__all__ = [
    "Cnf",
    "SatSolver",
    "SatResult",
    "SolveBudget",
    "SolveBudgetExceeded",
    "solve",
    "BUDGET_ENV_VAR",
    "RESTART_ENV_VAR",
    "RESTART_STRATEGIES",
    "encode_function",
    "encode_netlist",
    "equality_clauses",
    "EquivalenceResult",
    "EquivalenceChecker",
    "check_netlist_equivalence",
    "check_netlist_function",
]

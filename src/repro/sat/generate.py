"""NeuroSAT-style random CNF pair generation (SR(n) distribution).

Following Selsam et al.'s *SR(n)* scheme: clauses are sampled one at a
time — each of size ``1 + Bernoulli(0.7) + Geometric(0.4)`` over distinct
variables with random polarities — and added to an incremental solver
until the formula first becomes UNSAT.  Flipping a single literal of that
final clause usually yields a satisfiable twin, so each draw produces an
(UNSAT, SAT) pair differing in one literal: ideal for differential
cross-checking (both backends must agree on razor-thin sat/unsat
boundaries) and as an adversarial solver corpus whose difficulty dials
directly on the variable count.

The generator is a pure function of its seed — pairs regenerate
bit-identically across runs, platforms, and backends.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .solver import SatSolver

__all__ = ["CnfPair", "generate_pair", "generate_corpus"]

#: Probability that a sampled clause gets a second "base" literal.
_BERNOULLI_P = 0.7

#: Success probability of the geometric tail on the clause size.
_GEOMETRIC_P = 0.4


@dataclass(frozen=True)
class CnfPair:
    """An (UNSAT, SAT) clause-set pair differing in a single literal."""

    num_vars: int
    unsat_clauses: Tuple[Tuple[int, ...], ...]
    sat_clauses: Tuple[Tuple[int, ...], ...]


def _sample_clause_size(rng: random.Random, num_vars: int) -> int:
    size = 1
    if rng.random() < _BERNOULLI_P:
        size += 1
    while rng.random() < 1.0 - _GEOMETRIC_P:
        size += 1
    return min(size, num_vars)


def _sample_clause(rng: random.Random, num_vars: int) -> Tuple[int, ...]:
    size = _sample_clause_size(rng, num_vars)
    variables = rng.sample(range(1, num_vars + 1), size)
    return tuple(
        variable if rng.random() < 0.5 else -variable for variable in variables
    )


def _is_satisfiable(clauses: List[Tuple[int, ...]], num_vars: int) -> bool:
    solver = SatSolver()
    solver.reserve_vars(num_vars)
    for clause in clauses:
        solver.add_clause(clause)
    return solver.solve().satisfiable


def generate_pair(
    num_vars: int,
    seed: int,
    max_clauses: Optional[int] = None,
) -> CnfPair:
    """Generate one SR(``num_vars``) pair from a seed.

    Clauses are added to an incremental solver until the conjunction first
    turns UNSAT; the SAT twin flips one literal of the culprit clause
    (falling back to other literals — and, in the vanishingly rare case
    where no single flip helps, resampling the final clause) so the two
    members differ in exactly one literal.
    """
    if num_vars < 2:
        raise ValueError("num_vars must be at least 2")
    rng = random.Random(seed)
    limit = max_clauses if max_clauses is not None else 200 * num_vars
    solver = SatSolver()
    solver.reserve_vars(num_vars)
    clauses: List[Tuple[int, ...]] = []
    while True:
        if len(clauses) >= limit:
            raise RuntimeError(
                f"no UNSAT point within {limit} clauses (num_vars={num_vars}, "
                f"seed={seed})"
            )
        clause = _sample_clause(rng, num_vars)
        solver.add_clause(clause)
        clauses.append(clause)
        if not solver.solve().satisfiable:
            break
    # Try flipping each literal of the final clause; the first flip almost
    # always works (the prefix without the clause was satisfiable).
    prefix = clauses[:-1]
    final = clauses[-1]
    for position in range(len(final)):
        flipped = tuple(
            -literal if index == position else literal
            for index, literal in enumerate(final)
        )
        candidate = prefix + [flipped]
        if _is_satisfiable(candidate, num_vars):
            return CnfPair(
                num_vars=num_vars,
                unsat_clauses=tuple(clauses),
                sat_clauses=tuple(candidate),
            )
    # Degenerate final clause (e.g. a unit whose flip is also blocked):
    # drop it and keep sampling for a different UNSAT point.
    replacement = generate_pair(num_vars, rng.randrange(2**31), max_clauses=limit)
    return replacement


def generate_corpus(
    count: int,
    min_vars: int = 5,
    max_vars: int = 40,
    seed: int = 0,
) -> List[CnfPair]:
    """Generate ``count`` pairs with variable counts uniform in the range.

    The difficulty dial is the variable range: SR(10–40) instances solve in
    milliseconds, SR(100–200) in seconds — scale ``min_vars``/``max_vars``
    to the budget of the harness consuming the corpus.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if min_vars < 2 or max_vars < min_vars:
        raise ValueError("need 2 <= min_vars <= max_vars")
    rng = random.Random(seed)
    corpus: List[CnfPair] = []
    for _ in range(count):
        num_vars = rng.randint(min_vars, max_vars)
        corpus.append(generate_pair(num_vars, seed=rng.randrange(2**31)))
    return corpus

"""A small, self-contained genetic-algorithm engine (the DEAP substitute).

The engine is deliberately generic: it knows nothing about pin assignments.
It evolves a population of genotypes (lists of integers) under user-supplied
``sample``, ``evaluate``, ``crossover`` and ``mutate`` callables, with
tournament selection, elitism, a hall of fame, and per-generation statistics.
Fitness is minimised (the paper's fitness is synthesised area).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["GAParameters", "GenerationStats", "GAResult", "GeneticAlgorithm"]

Genotype = List[int]


@dataclass
class GAParameters:
    """Hyper-parameters of the genetic algorithm."""

    population_size: int = 24
    generations: int = 40
    crossover_probability: float = 0.7
    mutation_probability: float = 0.35
    tournament_size: int = 3
    elite_count: int = 2
    seed: int = 1

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError("population_size must be at least 2")
        if self.generations < 1:
            raise ValueError("generations must be at least 1")
        if not 0.0 <= self.crossover_probability <= 1.0:
            raise ValueError("crossover_probability must be in [0, 1]")
        if not 0.0 <= self.mutation_probability <= 1.0:
            raise ValueError("mutation_probability must be in [0, 1]")
        if self.tournament_size < 1:
            raise ValueError("tournament_size must be at least 1")
        if not 0 <= self.elite_count < self.population_size:
            raise ValueError("elite_count must be smaller than the population")


@dataclass
class GenerationStats:
    """Fitness statistics for one generation."""

    generation: int
    best: float
    average: float
    worst: float
    best_so_far: float
    evaluations_so_far: int


@dataclass
class GAResult:
    """The outcome of a GA run."""

    best_genotype: Genotype
    best_fitness: float
    history: List[GenerationStats]
    evaluations: int
    hall_of_fame: List[Tuple[Genotype, float]] = field(default_factory=list)

    @property
    def generations(self) -> int:
        """Number of generations that were run."""
        return len(self.history)


class GeneticAlgorithm:
    """Steady elitist GA with tournament selection over integer genotypes."""

    def __init__(
        self,
        sample: Callable[[random.Random], Genotype],
        evaluate: Callable[[Genotype], float],
        crossover: Callable[[Genotype, Genotype, random.Random], Tuple[Genotype, Genotype]],
        mutate: Callable[[Genotype, random.Random], Genotype],
        parameters: Optional[GAParameters] = None,
        hall_of_fame_size: int = 5,
    ):
        self._sample = sample
        self._evaluate_raw = evaluate
        self._crossover = crossover
        self._mutate = mutate
        self.parameters = parameters or GAParameters()
        self._hall_of_fame_size = hall_of_fame_size
        self._fitness_cache: Dict[Tuple[int, ...], float] = {}
        self._evaluations = 0

    # -------------------------------------------------------------- #
    # Fitness with memoisation
    # -------------------------------------------------------------- #
    def _evaluate(self, genotype: Genotype) -> float:
        key = tuple(genotype)
        cached = self._fitness_cache.get(key)
        if cached is not None:
            return cached
        fitness = float(self._evaluate_raw(genotype))
        self._fitness_cache[key] = fitness
        self._evaluations += 1
        return fitness

    @property
    def evaluations(self) -> int:
        """Number of distinct fitness evaluations performed so far."""
        return self._evaluations

    # -------------------------------------------------------------- #
    # Selection
    # -------------------------------------------------------------- #
    def _tournament(
        self,
        population: List[Tuple[Genotype, float]],
        rng: random.Random,
    ) -> Genotype:
        contenders = rng.sample(population, min(self.parameters.tournament_size, len(population)))
        winner = min(contenders, key=lambda item: item[1])
        return list(winner[0])

    # -------------------------------------------------------------- #
    # Main loop
    # -------------------------------------------------------------- #
    def run(
        self,
        initial_population: Optional[Sequence[Genotype]] = None,
        progress: Optional[Callable[[GenerationStats], None]] = None,
    ) -> GAResult:
        """Run the GA and return the best genotype found.

        ``initial_population`` optionally seeds (part of) generation zero;
        missing individuals are drawn from ``sample``.  ``progress`` is called
        once per generation with that generation's statistics.
        """
        params = self.parameters
        rng = random.Random(params.seed)

        genotypes: List[Genotype] = [list(g) for g in (initial_population or [])]
        genotypes = genotypes[: params.population_size]
        while len(genotypes) < params.population_size:
            genotypes.append(self._sample(rng))

        population = [(genotype, self._evaluate(genotype)) for genotype in genotypes]
        history: List[GenerationStats] = []
        hall: List[Tuple[Genotype, float]] = []

        best_so_far = min(population, key=lambda item: item[1])
        self._update_hall(hall, population)
        history.append(self._stats(0, population, best_so_far[1]))
        if progress is not None:
            progress(history[-1])

        for generation in range(1, params.generations + 1):
            offspring: List[Genotype] = []
            # Elitism: carry over the best individuals unchanged.
            elite = sorted(population, key=lambda item: item[1])[: params.elite_count]
            offspring.extend(list(genotype) for genotype, _ in elite)

            while len(offspring) < params.population_size:
                parent_a = self._tournament(population, rng)
                parent_b = self._tournament(population, rng)
                if rng.random() < params.crossover_probability:
                    child_a, child_b = self._crossover(parent_a, parent_b, rng)
                else:
                    child_a, child_b = list(parent_a), list(parent_b)
                if rng.random() < params.mutation_probability:
                    child_a = self._mutate(child_a, rng)
                if rng.random() < params.mutation_probability:
                    child_b = self._mutate(child_b, rng)
                offspring.append(child_a)
                if len(offspring) < params.population_size:
                    offspring.append(child_b)

            population = [(genotype, self._evaluate(genotype)) for genotype in offspring]
            candidate = min(population, key=lambda item: item[1])
            if candidate[1] < best_so_far[1]:
                best_so_far = (list(candidate[0]), candidate[1])
            self._update_hall(hall, population)
            history.append(self._stats(generation, population, best_so_far[1]))
            if progress is not None:
                progress(history[-1])

        return GAResult(
            best_genotype=list(best_so_far[0]),
            best_fitness=best_so_far[1],
            history=history,
            evaluations=self._evaluations,
            hall_of_fame=list(hall),
        )

    # -------------------------------------------------------------- #
    # Bookkeeping
    # -------------------------------------------------------------- #
    def _stats(
        self,
        generation: int,
        population: List[Tuple[Genotype, float]],
        best_so_far: float,
    ) -> GenerationStats:
        fitnesses = [fitness for _, fitness in population]
        return GenerationStats(
            generation=generation,
            best=min(fitnesses),
            average=sum(fitnesses) / len(fitnesses),
            worst=max(fitnesses),
            best_so_far=best_so_far,
            evaluations_so_far=self._evaluations,
        )

    def _update_hall(
        self,
        hall: List[Tuple[Genotype, float]],
        population: List[Tuple[Genotype, float]],
    ) -> None:
        for genotype, fitness in population:
            if any(tuple(genotype) == tuple(existing) for existing, _ in hall):
                continue
            hall.append((list(genotype), fitness))
        hall.sort(key=lambda item: item[1])
        del hall[self._hall_of_fame_size:]

"""A small, self-contained genetic-algorithm engine (the DEAP substitute).

The engine is deliberately generic: it knows nothing about pin assignments.
It evolves a population of genotypes (lists of integers) under user-supplied
``sample``, ``evaluate``, ``crossover`` and ``mutate`` callables, with
tournament selection, elitism, a hall of fame, and per-generation statistics.
Fitness is minimised (the paper's fitness is synthesised area).

Evaluation is batched per generation: the population is deduplicated by
genotype, cached fitnesses are reused, and only the unseen genotypes are
evaluated — concurrently across worker processes when ``jobs > 1`` (the
``evaluate`` callable must then be picklable).  Because the evaluation
function is required to be pure and results are applied in deterministic
order, a seeded run produces bit-identical results for every ``jobs``
setting.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..parallel import WorkerPool

__all__ = ["GAParameters", "GenerationStats", "GAResult", "GeneticAlgorithm"]

Genotype = List[int]


@dataclass
class GAParameters:
    """Hyper-parameters of the genetic algorithm."""

    population_size: int = 24
    generations: int = 40
    crossover_probability: float = 0.7
    mutation_probability: float = 0.35
    tournament_size: int = 3
    elite_count: int = 2
    seed: int = 1
    #: Wall-clock budget for the whole run (None = unlimited).  Checked
    #: between generations, so the search stops early but cleanly: the
    #: result carries the best-so-far genotype and the full history of the
    #: generations that did run, with ``stopped_early`` set.
    max_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError("population_size must be at least 2")
        if self.generations < 1:
            raise ValueError("generations must be at least 1")
        if self.max_seconds is not None and self.max_seconds <= 0:
            raise ValueError("max_seconds must be positive")
        if not 0.0 <= self.crossover_probability <= 1.0:
            raise ValueError("crossover_probability must be in [0, 1]")
        if not 0.0 <= self.mutation_probability <= 1.0:
            raise ValueError("mutation_probability must be in [0, 1]")
        if self.tournament_size < 1:
            raise ValueError("tournament_size must be at least 1")
        if not 0 <= self.elite_count < self.population_size:
            raise ValueError("elite_count must be smaller than the population")


@dataclass
class GenerationStats:
    """Fitness statistics for one generation.

    ``cache_hits`` counts fitness lookups served from the engine's genotype
    cache; ``cache_misses`` (the actual evaluation calls) is by construction
    the same number as ``evaluations_so_far`` and is exposed as a derived
    property so the two can never drift apart.
    """

    generation: int
    best: float
    average: float
    worst: float
    best_so_far: float
    evaluations_so_far: int
    cache_hits: int = 0

    @property
    def cache_misses(self) -> int:
        """Fitness requests that required an actual evaluation."""
        return self.evaluations_so_far


@dataclass
class GAResult:
    """The outcome of a GA run."""

    best_genotype: Genotype
    best_fitness: float
    history: List[GenerationStats]
    evaluations: int
    hall_of_fame: List[Tuple[Genotype, float]] = field(default_factory=list)
    #: True when the wall-clock budget cut the run short of its generation
    #: count; ``best_genotype`` is then the best individual found so far.
    stopped_early: bool = False

    @property
    def generations(self) -> int:
        """Number of generations that were run."""
        return len(self.history)


class GeneticAlgorithm:
    """Steady elitist GA with tournament selection over integer genotypes."""

    def __init__(
        self,
        sample: Callable[[random.Random], Genotype],
        evaluate: Callable[[Genotype], float],
        crossover: Callable[[Genotype, Genotype, random.Random], Tuple[Genotype, Genotype]],
        mutate: Callable[[Genotype, random.Random], Genotype],
        parameters: Optional[GAParameters] = None,
        hall_of_fame_size: int = 5,
        jobs: int = 1,
    ):
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self._sample = sample
        self._evaluate_raw = evaluate
        self._crossover = crossover
        self._mutate = mutate
        self.parameters = parameters or GAParameters()
        self._hall_of_fame_size = hall_of_fame_size
        self.jobs = jobs
        self._fitness_cache: Dict[Tuple[int, ...], float] = {}
        self._evaluations = 0
        self._cache_hits = 0

    # -------------------------------------------------------------- #
    # Fitness with memoisation
    # -------------------------------------------------------------- #
    def _evaluate_batch(
        self, genotypes: Sequence[Genotype], pool: Optional[WorkerPool]
    ) -> List[Tuple[Genotype, float]]:
        """Evaluate one generation: dedupe, reuse the cache, batch the rest.

        Unseen genotypes are evaluated in first-occurrence order (possibly
        across worker processes); the returned population preserves the input
        order, so results are identical to evaluating serially one by one.
        """
        keys = [tuple(genotype) for genotype in genotypes]
        unseen: List[Tuple[int, ...]] = []
        scheduled = set()
        for key in keys:
            if key not in self._fitness_cache and key not in scheduled:
                scheduled.add(key)
                unseen.append(key)
        self._cache_hits += len(keys) - len(unseen)
        if unseen:
            if pool is not None and len(unseen) > 1:
                results = pool.map([list(key) for key in unseen])
            else:
                results = [self._evaluate_raw(list(key)) for key in unseen]
            for key, fitness in zip(unseen, results):
                self._fitness_cache[key] = float(fitness)
                self._evaluations += 1
        return [
            (genotype, self._fitness_cache[key])
            for genotype, key in zip(genotypes, keys)
        ]

    @property
    def evaluations(self) -> int:
        """Number of distinct fitness evaluations performed so far."""
        return self._evaluations

    @property
    def cache_hits(self) -> int:
        """Number of fitness lookups served from the genotype cache."""
        return self._cache_hits

    def cached_fitnesses(self) -> List[Tuple[Tuple[int, ...], float]]:
        """All (genotype key, fitness) pairs the engine has evaluated.

        With ``jobs > 1`` the evaluations happened in worker processes; this
        is how callers feed the results back into their own shared caches.
        """
        return list(self._fitness_cache.items())

    # -------------------------------------------------------------- #
    # Selection
    # -------------------------------------------------------------- #
    def _tournament(
        self,
        population: List[Tuple[Genotype, float]],
        rng: random.Random,
    ) -> Genotype:
        contenders = rng.sample(population, min(self.parameters.tournament_size, len(population)))
        winner = min(contenders, key=lambda item: item[1])
        return list(winner[0])

    # -------------------------------------------------------------- #
    # Main loop
    # -------------------------------------------------------------- #
    def run(
        self,
        initial_population: Optional[Sequence[Genotype]] = None,
        progress: Optional[Callable[[GenerationStats], None]] = None,
    ) -> GAResult:
        """Run the GA and return the best genotype found.

        ``initial_population`` optionally seeds (part of) generation zero;
        missing individuals are drawn from ``sample``.  ``progress`` is called
        once per generation with that generation's statistics.
        """
        params = self.parameters
        rng = random.Random(params.seed)
        deadline = (
            time.monotonic() + params.max_seconds
            if params.max_seconds is not None
            else None
        )
        stopped_early = False

        genotypes: List[Genotype] = [list(g) for g in (initial_population or [])]
        genotypes = genotypes[: params.population_size]
        while len(genotypes) < params.population_size:
            genotypes.append(self._sample(rng))

        pool: Optional[WorkerPool] = None
        if self.jobs > 1:
            pool = WorkerPool(self._evaluate_raw, jobs=self.jobs)
        try:
            population = self._evaluate_batch(genotypes, pool)
            history: List[GenerationStats] = []
            hall: List[Tuple[Genotype, float]] = []

            best_so_far = min(population, key=lambda item: item[1])
            self._update_hall(hall, population)
            history.append(self._stats(0, population, best_so_far[1]))
            if progress is not None:
                progress(history[-1])

            for generation in range(1, params.generations + 1):
                if deadline is not None and time.monotonic() >= deadline:
                    # Budget spent: keep everything evolved so far and stop
                    # between generations (never mid-evaluation), so the
                    # result is a valid, fully evaluated population snapshot.
                    stopped_early = True
                    break
                offspring: List[Genotype] = []
                # Elitism: carry over the best individuals unchanged.
                elite = sorted(population, key=lambda item: item[1])[: params.elite_count]
                offspring.extend(list(genotype) for genotype, _ in elite)

                while len(offspring) < params.population_size:
                    parent_a = self._tournament(population, rng)
                    parent_b = self._tournament(population, rng)
                    if rng.random() < params.crossover_probability:
                        child_a, child_b = self._crossover(parent_a, parent_b, rng)
                    else:
                        child_a, child_b = list(parent_a), list(parent_b)
                    if rng.random() < params.mutation_probability:
                        child_a = self._mutate(child_a, rng)
                    if rng.random() < params.mutation_probability:
                        child_b = self._mutate(child_b, rng)
                    offspring.append(child_a)
                    if len(offspring) < params.population_size:
                        offspring.append(child_b)

                population = self._evaluate_batch(offspring, pool)
                candidate = min(population, key=lambda item: item[1])
                if candidate[1] < best_so_far[1]:
                    best_so_far = (list(candidate[0]), candidate[1])
                self._update_hall(hall, population)
                history.append(self._stats(generation, population, best_so_far[1]))
                if progress is not None:
                    progress(history[-1])
        finally:
            if pool is not None:
                pool.close()

        return GAResult(
            best_genotype=list(best_so_far[0]),
            best_fitness=best_so_far[1],
            history=history,
            evaluations=self._evaluations,
            hall_of_fame=list(hall),
            stopped_early=stopped_early,
        )

    # -------------------------------------------------------------- #
    # Bookkeeping
    # -------------------------------------------------------------- #
    def _stats(
        self,
        generation: int,
        population: List[Tuple[Genotype, float]],
        best_so_far: float,
    ) -> GenerationStats:
        fitnesses = [fitness for _, fitness in population]
        return GenerationStats(
            generation=generation,
            best=min(fitnesses),
            average=sum(fitnesses) / len(fitnesses),
            worst=max(fitnesses),
            best_so_far=best_so_far,
            evaluations_so_far=self._evaluations,
            cache_hits=self._cache_hits,
        )

    def _update_hall(
        self,
        hall: List[Tuple[Genotype, float]],
        population: List[Tuple[Genotype, float]],
    ) -> None:
        for genotype, fitness in population:
            if any(tuple(genotype) == tuple(existing) for existing, _ in hall):
                continue
            hall.append((list(genotype), fitness))
        hall.sort(key=lambda item: item[1])
        del hall[self._hall_of_fame_size:]

"""Random pin-assignment baseline.

The paper compares the genetic algorithm against an equal budget of random
pin assignments (Table I's "Random avg/best" columns and the horizontal
lines of Fig. 4b, plus the histogram of Fig. 4a).  This module evaluates a
batch of random assignments using the same fitness machinery as the GA.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..logic.boolfunc import BoolFunction
from ..merge.pinassign import PinAssignment
from ..netlist.library import CellLibrary
from ..parallel import parallel_map
from ..synth.script import SynthesisEffort
from .pinopt import PinAssignmentProblem

__all__ = ["RandomSearchResult", "random_pin_search"]


@dataclass
class RandomSearchResult:
    """Areas of a batch of random pin assignments."""

    areas: List[float]
    best_area: float
    average_area: float
    worst_area: float
    best_assignment: PinAssignment
    evaluations: int

    def histogram(self, bin_width: float = 5.0) -> List[tuple]:
        """Return (bin_start, count) pairs — the data behind Fig. 4a."""
        if not self.areas:
            return []
        start = bin_width * int(min(self.areas) // bin_width)
        bins = {}
        for area in self.areas:
            bucket = start + bin_width * int((area - start) // bin_width)
            bins[bucket] = bins.get(bucket, 0) + 1
        return sorted(bins.items())


def random_pin_search(
    functions: Sequence[BoolFunction],
    num_samples: int,
    seed: int = 7,
    library: Optional[CellLibrary] = None,
    effort: str = SynthesisEffort.FAST,
    problem: Optional[PinAssignmentProblem] = None,
    include_identity: bool = False,
    jobs: int = 1,
) -> RandomSearchResult:
    """Evaluate ``num_samples`` random pin assignments and summarise the areas.

    ``jobs > 1`` spreads the synthesis runs over worker processes; the
    genotype batch is drawn from the seeded RNG up front, so the result is
    identical for every ``jobs`` value.
    """
    if num_samples < 1:
        raise ValueError("num_samples must be at least 1")
    if problem is None:
        problem = PinAssignmentProblem(functions, library=library, effort=effort)
    rng = random.Random(seed)

    genotypes: List[List[int]] = []
    if include_identity:
        genotypes.append(problem.space.identity_genotype())
    while len(genotypes) < num_samples:
        genotypes.append(problem.random_genotype(rng))

    if jobs > 1:
        evaluated = parallel_map(problem.evaluate, genotypes, jobs=jobs)
        # Feed the worker results back into the shared (parent) cache so a
        # subsequent GA run on the same problem object still benefits.
        for genotype, area in zip(genotypes, evaluated):
            problem.store(genotype, area)
    else:
        evaluated = [problem.evaluate(genotype) for genotype in genotypes]

    areas: List[float] = []
    best_area = float("inf")
    best_genotype = genotypes[0]
    for genotype, area in zip(genotypes, evaluated):
        areas.append(area)
        if area < best_area:
            best_area = area
            best_genotype = genotype

    return RandomSearchResult(
        areas=areas,
        best_area=best_area,
        average_area=sum(areas) / len(areas),
        worst_area=max(areas),
        best_assignment=problem.assignment_from_genotype(best_genotype),
        evaluations=len(areas),
    )

"""Genetic operators for permutation-segment genotypes.

The pin-assignment genotype is a concatenation of independent permutation
segments (one input permutation and one output permutation per viable
function).  Crossover and mutation must keep every segment a valid
permutation, so the operators below work segment-wise:

* partially-matched crossover (PMX) and order crossover (OX) per segment;
* swap and shuffle mutations per segment.

These are the same operator families DEAP provides for permutation encodings.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

__all__ = [
    "SegmentedPermutationSpace",
    "pmx_crossover",
    "order_crossover",
    "swap_mutation",
    "shuffle_mutation",
]


def pmx_crossover(
    parent_a: Sequence[int], parent_b: Sequence[int], rng: random.Random
) -> Tuple[List[int], List[int]]:
    """Partially-matched crossover on two same-length permutations."""
    size = len(parent_a)
    if size != len(parent_b):
        raise ValueError("parents must have the same length")
    if size < 2:
        return list(parent_a), list(parent_b)
    cut1, cut2 = sorted(rng.sample(range(size), 2))
    child_a = _pmx_child(list(parent_a), list(parent_b), cut1, cut2)
    child_b = _pmx_child(list(parent_b), list(parent_a), cut1, cut2)
    return child_a, child_b


def _pmx_child(base: List[int], donor: List[int], cut1: int, cut2: int) -> List[int]:
    child = [-1] * len(base)
    child[cut1:cut2 + 1] = donor[cut1:cut2 + 1]
    segment = set(child[cut1:cut2 + 1])
    for position in range(len(base)):
        if cut1 <= position <= cut2:
            continue
        candidate = base[position]
        while candidate in segment:
            # Follow the PMX mapping chain until we land outside the segment.
            index = donor.index(candidate, cut1, cut2 + 1)
            candidate = base[index]
        child[position] = candidate
    return child


def order_crossover(
    parent_a: Sequence[int], parent_b: Sequence[int], rng: random.Random
) -> Tuple[List[int], List[int]]:
    """Order crossover (OX1) on two same-length permutations."""
    size = len(parent_a)
    if size != len(parent_b):
        raise ValueError("parents must have the same length")
    if size < 2:
        return list(parent_a), list(parent_b)
    cut1, cut2 = sorted(rng.sample(range(size), 2))
    return (
        _ox_child(list(parent_a), list(parent_b), cut1, cut2),
        _ox_child(list(parent_b), list(parent_a), cut1, cut2),
    )


def _ox_child(base: List[int], donor: List[int], cut1: int, cut2: int) -> List[int]:
    size = len(base)
    child = [-1] * size
    child[cut1:cut2 + 1] = base[cut1:cut2 + 1]
    taken = set(child[cut1:cut2 + 1])
    fill = [gene for gene in donor if gene not in taken]
    cursor = 0
    for position in range(size):
        if child[position] == -1:
            child[position] = fill[cursor]
            cursor += 1
    return child


def swap_mutation(
    permutation: Sequence[int], rng: random.Random, swaps: int = 1
) -> List[int]:
    """Swap ``swaps`` random pairs of positions."""
    result = list(permutation)
    size = len(result)
    if size < 2:
        return result
    for _ in range(max(1, swaps)):
        i, j = rng.sample(range(size), 2)
        result[i], result[j] = result[j], result[i]
    return result


def shuffle_mutation(
    permutation: Sequence[int], rng: random.Random, probability: float = 0.3
) -> List[int]:
    """Shuffle a random contiguous slice with the given probability per call."""
    result = list(permutation)
    size = len(result)
    if size < 2 or rng.random() > probability:
        return result
    cut1, cut2 = sorted(rng.sample(range(size), 2))
    middle = result[cut1:cut2 + 1]
    rng.shuffle(middle)
    result[cut1:cut2 + 1] = middle
    return result


class SegmentedPermutationSpace:
    """A genotype made of independent permutation segments.

    ``segment_sizes[k]`` is the length of segment ``k``; the genotype is the
    concatenation of one permutation per segment.  All operators preserve the
    per-segment permutation property.
    """

    def __init__(self, segment_sizes: Sequence[int]):
        if not segment_sizes:
            raise ValueError("at least one segment is required")
        if any(size < 1 for size in segment_sizes):
            raise ValueError("segment sizes must be positive")
        self.segment_sizes = list(segment_sizes)
        self.total_length = sum(segment_sizes)

    # -------------------------------------------------------------- #
    # Segment plumbing
    # -------------------------------------------------------------- #
    def split(self, genotype: Sequence[int]) -> List[List[int]]:
        """Split a flat genotype into its segments."""
        if len(genotype) != self.total_length:
            raise ValueError(
                f"genotype length {len(genotype)} does not match space "
                f"({self.total_length})"
            )
        segments = []
        cursor = 0
        for size in self.segment_sizes:
            segments.append(list(genotype[cursor:cursor + size]))
            cursor += size
        return segments

    def join(self, segments: Sequence[Sequence[int]]) -> List[int]:
        """Concatenate segments back into a flat genotype."""
        genotype: List[int] = []
        for segment in segments:
            genotype.extend(segment)
        return genotype

    def validate(self, genotype: Sequence[int]) -> bool:
        """Return True when every segment is a valid permutation."""
        try:
            segments = self.split(genotype)
        except ValueError:
            return False
        return all(
            sorted(segment) == list(range(len(segment))) for segment in segments
        )

    # -------------------------------------------------------------- #
    # Operators over the full genotype
    # -------------------------------------------------------------- #
    def random_genotype(self, rng: random.Random) -> List[int]:
        """Sample a uniformly random genotype."""
        segments = []
        for size in self.segment_sizes:
            segment = list(range(size))
            rng.shuffle(segment)
            segments.append(segment)
        return self.join(segments)

    def identity_genotype(self) -> List[int]:
        """The genotype where every segment is the identity permutation."""
        return self.join([list(range(size)) for size in self.segment_sizes])

    def crossover(
        self,
        parent_a: Sequence[int],
        parent_b: Sequence[int],
        rng: random.Random,
        method: str = "pmx",
    ) -> Tuple[List[int], List[int]]:
        """Segment-wise crossover of two genotypes."""
        segments_a = self.split(parent_a)
        segments_b = self.split(parent_b)
        children_a = []
        children_b = []
        for segment_a, segment_b in zip(segments_a, segments_b):
            if method == "pmx":
                child_a, child_b = pmx_crossover(segment_a, segment_b, rng)
            elif method == "order":
                child_a, child_b = order_crossover(segment_a, segment_b, rng)
            else:
                raise ValueError(f"unknown crossover method {method!r}")
            children_a.append(child_a)
            children_b.append(child_b)
        return self.join(children_a), self.join(children_b)

    def mutate(
        self,
        genotype: Sequence[int],
        rng: random.Random,
        swap_probability: float = 0.5,
        shuffle_probability: float = 0.2,
    ) -> List[int]:
        """Segment-wise mutation of a genotype."""
        segments = self.split(genotype)
        mutated = []
        for segment in segments:
            result = list(segment)
            if rng.random() < swap_probability:
                result = swap_mutation(result, rng)
            result = shuffle_mutation(result, rng, probability=shuffle_probability)
            mutated.append(result)
        return self.join(mutated)

"""Phase II: genetic-algorithm optimisation of pin assignments.

The fitness of a pin assignment is the gate-equivalent area of the merged
circuit after synthesis — exactly the loop the paper runs with DEAP driving
ABC.  Synthesis is by far the dominant cost, so fitness evaluations are
cached at two levels:

* by **genotype** (the GA engine also caches, but the problem object keeps
  its own cache so random search and the GA can share evaluations), and
* by **canonical signature** of the merged design: the packed truth tables
  of the merged function.  Pin-assignment symmetries (permutations a viable
  function is invariant under, compositions that cancel out) collapse many
  distinct genotypes onto the same merged circuit, and such genotypes never
  re-synthesize — the cached area is exact because synthesis is a pure
  function of the merged truth tables.

Hit/miss counters for both levels are exposed via
:meth:`PinAssignmentProblem.cache_stats`.  ``optimize_pin_assignment``
accepts ``jobs`` to evaluate each generation's unseen genotypes across
worker processes; seeded results are bit-identical for every ``jobs`` value.

When the ``REPRO_CACHE_DIR`` environment variable names a directory, the
canonical-signature cache is additionally persisted to an append-only JSONL
file there (:class:`SynthesisDiskCache`): entries are loaded read-through at
start-up and every fresh synthesis appends one line, so repeated sweeps, CI
runs, and the ``paper`` profile share synthesis work across processes and
machines.  The cached area is exact — synthesis is a pure function of the
merged truth tables — so persistence cannot change any result.
"""

from __future__ import annotations

import glob as _glob
import hashlib
import json
import os
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..faults import corrupt_text, faults_enabled
from ..logic.boolfunc import BoolFunction
from ..merge.merged import MergedDesign, merge_functions
from ..merge.pinassign import PinAssignment
from ..netlist.library import CellLibrary, standard_cell_library
from ..obs import metrics as obs_metrics
from ..parallel import register_worker_warmup
from ..synth.script import (
    SCHEDULER_ENV_VAR,
    SynthesisEffort,
    SynthesisResult,
    synthesize,
)
from .engine import GAParameters, GAResult, GenerationStats, GeneticAlgorithm
from .operators import SegmentedPermutationSpace

__all__ = [
    "PinAssignmentProblem",
    "PinOptimizationResult",
    "SynthesisDiskCache",
    "library_fingerprint",
    "optimize_pin_assignment",
    "warm_disk_cache",
    "compact_cache_dir",
    "resolve_synthesis_cache",
    "CACHE_DIR_ENV_VAR",
]

#: Environment variable naming the directory of the persistent synthesis cache.
CACHE_DIR_ENV_VAR = "REPRO_CACHE_DIR"


def library_fingerprint(library: CellLibrary) -> str:
    """Deterministic fingerprint of a cell library's synthesis-relevant data.

    Synthesised area depends on the library (cells, their functions, their
    areas), so cache entries written under one library must never answer
    queries under another.  The fingerprint hashes a canonical rendering of
    every cell; it is stable across processes and machines (unlike
    ``hash()``).
    """
    canon = ";".join(
        f"{cell.name}:{cell.num_inputs}:{cell.function.bits:x}:{cell.area!r}"
        for cell in sorted(library.cells(), key=lambda cell: cell.name)
    )
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:16]


class SynthesisDiskCache:
    """Append-only JSONL store of synthesised areas keyed by signature.

    One line per entry: ``{"effort": ..., "library": <fingerprint>,
    "signature": [...], "area": ...}``.  The key includes a fingerprint of
    the cell library, so caches shared across runs never answer a query
    synthesised under a different library.

    **Writes are interleave-safe by construction**: every process appends
    to its *own* segment file (``synthesis_cache.<pid>.jsonl``), so two
    concurrent writers can never interleave bytes inside one line, no
    matter how the platform buffers appends.  Loading merges the legacy
    shared file plus every segment; corrupt or alien lines are skipped —
    a torn final line from a crashed writer must not poison the store.
    All I/O failures degrade to an in-memory cache rather than failing
    the experiment.
    """

    FILENAME = "synthesis_cache.jsonl"

    #: Per-process segment files (``<pid>`` keeps one file per writer).
    SEGMENT_PATTERN = "synthesis_cache.*.jsonl"

    #: Process-wide shared instances, keyed by absolute directory.  Loading
    #: the JSONL store is the expensive part; one load per process serves
    #: every problem object (and the worker-pool warm-up primes it before
    #: the first task instead of on the first miss).
    _SHARED: Dict[str, "SynthesisDiskCache"] = {}

    def __init__(self, directory: str):
        self.directory = directory
        self.path = os.path.join(directory, self.FILENAME)
        #: This process's private append target — never shared, so appends
        #: from concurrent processes cannot interleave within a line.
        self.segment_path = os.path.join(
            directory, f"synthesis_cache.{os.getpid()}.jsonl"
        )
        self._entries: Dict[Tuple[str, str, Tuple[int, ...]], float] = {}
        self.loaded = 0
        self.hits = 0
        self.appends = 0
        self._load()

    @classmethod
    def shared(cls, directory: str) -> "SynthesisDiskCache":
        """The process-wide cache instance for a directory (loaded once)."""
        key = os.path.abspath(directory)
        cache = cls._SHARED.get(key)
        if cache is None:
            cache = cls(directory)
            cls._SHARED[key] = cache
        return cache

    @classmethod
    def from_environment(cls) -> Optional["SynthesisDiskCache"]:
        """The shared cache named by ``REPRO_CACHE_DIR`` (None when unset)."""
        directory = os.environ.get(CACHE_DIR_ENV_VAR, "").strip()
        if not directory:
            return None
        try:
            os.makedirs(directory, exist_ok=True)
        except OSError:
            return None
        return cls.shared(directory)

    def _store_files(self) -> List[str]:
        """The legacy shared file plus every per-process segment, sorted."""
        paths = {self.path}
        try:
            paths.update(
                _glob.glob(os.path.join(self.directory, self.SEGMENT_PATTERN))
            )
        except OSError:
            pass
        return sorted(paths)

    def _load(self) -> None:
        for path in self._store_files():
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    for line in handle:
                        line = line.strip()
                        if not line:
                            continue
                        try:
                            entry = json.loads(line)
                            key = (
                                str(entry["effort"]),
                                str(entry["library"]),
                                tuple(int(value) for value in entry["signature"]),
                            )
                            self._entries[key] = float(entry["area"])
                            self.loaded += 1
                        except (ValueError, KeyError, TypeError):
                            continue  # torn or alien line; skip it
            except OSError:
                continue

    def get(
        self, effort: str, library: str, signature: Tuple[int, ...]
    ) -> Optional[float]:
        """Look up a synthesised area (None on miss)."""
        area = self._entries.get((effort, library, signature))
        if area is not None:
            self.hits += 1
        return area

    def put(
        self, effort: str, library: str, signature: Tuple[int, ...], area: float
    ) -> None:
        """Record a synthesised area (idempotent; appends one JSONL line)."""
        key = (effort, library, signature)
        if key in self._entries:
            return
        self._entries[key] = area
        line = (
            json.dumps(
                {
                    "effort": effort,
                    "library": library,
                    "signature": list(signature),
                    "area": area,
                }
            )
            + "\n"
        )
        if faults_enabled():
            # Chaos hook: a matching ``cache_corrupt`` fault truncates this
            # line mid-write — the on-disk damage a crashed writer leaves.
            # ``_load`` must skip exactly this line and nothing else.
            line = corrupt_text("cache_corrupt", line, key=library)
        try:
            with open(self.segment_path, "a", encoding="utf-8") as handle:
                handle.write(line)
                handle.flush()
            self.appends += 1
        except OSError:
            pass

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self):
        """Iterate ``(effort, library, signature, area)`` over every entry.

        The export surface behind cache compaction and the service's shared
        cache tier: both re-serialise entries without knowing the in-memory
        key layout.
        """
        for (effort, library, signature), area in self._entries.items():
            yield effort, library, signature, area


def compact_cache_dir(directory: str) -> Dict[str, int]:
    """Merge every cache segment in ``directory`` into one deduplicated file.

    PR 7 made appends segment-per-pid (interleave-safe), which long-lived
    fleets pay for in unbounded small files.  Compaction loads the legacy
    shared file plus every segment (torn lines skipped, duplicates
    deduplicated by key), rewrites the single shared ``FILENAME`` via an
    atomic rename, and deletes the merged segments.  Concurrent writers
    stay safe: they only ever append to their *own* live segment, and a
    segment created after the scan is simply left for the next compaction.
    """
    cache = SynthesisDiskCache(directory)
    merged = [path for path in cache._store_files() if os.path.exists(path)]
    text = "".join(
        json.dumps(
            {
                "effort": effort,
                "library": library,
                "signature": list(signature),
                "area": area,
            }
        )
        + "\n"
        for effort, library, signature, area in sorted(cache.entries())
    )
    temp_path = f"{cache.path}.tmp.{os.getpid()}"
    with open(temp_path, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp_path, cache.path)
    removed = 0
    for path in merged:
        if path == cache.path:
            continue
        try:
            os.unlink(path)
            removed += 1
        except OSError:
            pass
    return {
        "entries": len(cache),
        "files_merged": len(merged),
        "segments_removed": removed,
    }


def resolve_synthesis_cache() -> Optional[SynthesisDiskCache]:
    """The synthesis cache the environment asks for, remote tier included.

    With ``REPRO_CACHE_URL`` set the returned object is a
    :class:`repro.service.cache.RemoteCacheTier` — same ``get``/``put``
    surface, backed by the coordinator's shared cache over HTTP with the
    local ``REPRO_CACHE_DIR`` store (when any) as its read-through front.
    Otherwise this is plain :meth:`SynthesisDiskCache.from_environment`.
    """
    url = os.environ.get("REPRO_CACHE_URL", "").strip()
    if url:
        from ..service.cache import RemoteCacheTier

        return RemoteCacheTier.from_environment()
    return SynthesisDiskCache.from_environment()


def warm_disk_cache() -> Optional[SynthesisDiskCache]:
    """Load the environment-named cache into the process-wide slot.

    Registered as a worker-pool warm-up hook, so every worker process pays
    the JSONL load exactly once at start-up — before the first task —
    instead of on the first synthesis-cache miss of its first job.  With
    ``REPRO_CACHE_URL`` set this also wires up the remote tier.
    """
    return resolve_synthesis_cache()


# Every worker a pool spawns pre-warms the persistent synthesis cache.
register_worker_warmup(warm_disk_cache)


class PinAssignmentProblem:
    """Fitness machinery shared by the GA and the random-search baseline."""

    def __init__(
        self,
        functions: Sequence[BoolFunction],
        library: Optional[CellLibrary] = None,
        effort: str = SynthesisEffort.FAST,
        fix_first_function: bool = True,
        disk_cache: Optional[SynthesisDiskCache] = None,
        scheduler: Optional[str] = None,
    ):
        if not functions:
            raise ValueError("at least one viable function is required")
        self.functions = list(functions)
        self.library = library or standard_cell_library()
        self.effort = effort
        self.scheduler = scheduler
        self.fix_first_function = fix_first_function
        self.num_inputs = functions[0].num_inputs
        self.num_outputs = functions[0].num_outputs
        for function in functions:
            if (
                function.num_inputs != self.num_inputs
                or function.num_outputs != self.num_outputs
            ):
                raise ValueError("all viable functions must have the same shape")
        segment_sizes = [self.num_inputs] * len(functions) + [self.num_outputs] * len(functions)
        self.space = SegmentedPermutationSpace(segment_sizes)
        self._area_cache: Dict[Tuple[int, ...], float] = {}
        self._signature_cache: Dict[Tuple[int, ...], float] = {}
        #: Optional persistent read-through store (REPRO_CACHE_DIR by default;
        #: the environment-named store is shared process-wide and pre-warmed
        #: once per worker by the pool initializer).  Only the default fixed
        #: scheduler may use it: fixed-schedule synthesis is a pure function
        #: of the merged truth tables, but an adaptive schedule also depends
        #: on accumulated credit history, so its areas must never be served
        #: from (or written to) a persistent signature-keyed store.
        effective_scheduler = (
            scheduler or os.environ.get(SCHEDULER_ENV_VAR) or "fixed"
        )
        if effective_scheduler != "fixed":
            self.disk_cache: Optional[SynthesisDiskCache] = None
        else:
            self.disk_cache = (
                disk_cache if disk_cache is not None else resolve_synthesis_cache()
            )
        self._library_fingerprint = (
            library_fingerprint(self.library) if self.disk_cache is not None else ""
        )
        # The shared store serves many problems; report per-problem deltas.
        self._disk_hits_baseline = (
            self.disk_cache.hits if self.disk_cache is not None else 0
        )
        remote_stats = getattr(self.disk_cache, "remote_stats", None)
        self._remote_baseline = dict(remote_stats()) if remote_stats else {}
        self.evaluations = 0
        self.genotype_hits = 0
        self.signature_hits = 0

    # -------------------------------------------------------------- #
    # Genotype plumbing
    # -------------------------------------------------------------- #
    def assignment_from_genotype(self, genotype: Sequence[int]) -> PinAssignment:
        """Convert a flat genotype into a :class:`PinAssignment`."""
        return PinAssignment.from_genotype(
            list(genotype), len(self.functions), self.num_inputs, self.num_outputs
        )

    def random_genotype(self, rng: random.Random) -> List[int]:
        """Sample a random genotype (function 0 optionally pinned to identity)."""
        genotype = self.space.random_genotype(rng)
        if self.fix_first_function:
            genotype = self._pin_first_function(genotype)
        return genotype

    def _pin_first_function(self, genotype: List[int]) -> List[int]:
        """Force function 0's permutations to identity (removes symmetry)."""
        segments = self.space.split(genotype)
        segments[0] = list(range(self.num_inputs))
        segments[len(self.functions)] = list(range(self.num_outputs))
        return self.space.join(segments)

    # -------------------------------------------------------------- #
    # Fitness
    # -------------------------------------------------------------- #
    def _merged_design(self, genotype: Sequence[int]) -> MergedDesign:
        """The merged design a genotype describes (the single place where a
        genotype becomes a circuit — evaluation, signatures and synthesis all
        go through here so they can never disagree)."""
        assignment = self.assignment_from_genotype(genotype)
        return merge_functions(self.functions, assignment)

    def synthesize_genotype(self, genotype: Sequence[int]) -> SynthesisResult:
        """Synthesise the merged circuit for a genotype (not cached)."""
        design = self._merged_design(genotype)
        return synthesize(design.function, library=self.library, effort=self.effort,
                          scheduler=self.scheduler)

    def canonical_signature(self, genotype: Sequence[int]) -> Tuple[int, ...]:
        """Canonical key of the merged circuit a genotype produces.

        The signature is the merged function itself (input count plus the
        packed truth-table bits of every output), so two genotypes share a
        signature exactly when they merge to the same circuit — the condition
        under which their synthesised areas are provably equal.
        """
        return self._signature_of(self._merged_design(genotype).function)

    @staticmethod
    def _signature_of(function: BoolFunction) -> Tuple[int, ...]:
        return (function.num_inputs,) + tuple(table.bits for table in function.outputs)

    def evaluate(self, genotype: Sequence[int]) -> float:
        """Synthesised area (GE) of the merged circuit for this genotype."""
        key = tuple(genotype)
        cached = self._area_cache.get(key)
        if cached is not None:
            self.genotype_hits += 1
            obs_metrics.counter("repro_ga_evaluations_total", result="genotype_hit")
            return cached
        design = self._merged_design(genotype)
        signature = self._signature_of(design.function)
        area = self._signature_cache.get(signature)
        if area is not None:
            self.signature_hits += 1
            obs_metrics.counter("repro_ga_evaluations_total", result="signature_hit")
        else:
            if self.disk_cache is not None:
                area = self.disk_cache.get(
                    self.effort, self._library_fingerprint, signature
                )
            if area is None:
                result = synthesize(design.function, library=self.library,
                                    effort=self.effort, scheduler=self.scheduler)
                area = result.area
                self.evaluations += 1
                obs_metrics.counter("repro_ga_evaluations_total", result="synthesized")
                if self.disk_cache is not None:
                    self.disk_cache.put(
                        self.effort, self._library_fingerprint, signature, area
                    )
            else:
                obs_metrics.counter("repro_ga_evaluations_total", result="disk_hit")
            self._signature_cache[signature] = area
        self._area_cache[key] = area
        return area

    def store(self, genotype: Sequence[int], area: float) -> None:
        """Prime the genotype cache with an externally computed area.

        Used by parallel sweeps to feed results evaluated in worker processes
        back into the shared cache without re-synthesizing.
        """
        self._area_cache[tuple(genotype)] = float(area)

    def cache_stats(self) -> Dict[str, int]:
        """Hit/miss counters and sizes of the fitness-cache levels.

        The ``disk_*`` counters are only present when a persistent cache is
        attached (``REPRO_CACHE_DIR``).  The environment-named store is
        shared process-wide, so ``disk_hits`` reports the hits observed
        since *this* problem was constructed (``disk_loaded`` and
        ``disk_entries`` describe the shared store itself).
        """
        stats = {
            "evaluations": self.evaluations,
            "genotype_hits": self.genotype_hits,
            "signature_hits": self.signature_hits,
            "genotype_entries": len(self._area_cache),
            "signature_entries": len(self._signature_cache),
        }
        if self.disk_cache is not None:
            stats["disk_hits"] = self.disk_cache.hits - self._disk_hits_baseline
            stats["disk_loaded"] = self.disk_cache.loaded
            stats["disk_entries"] = len(self.disk_cache)
            remote_stats = getattr(self.disk_cache, "remote_stats", None)
            if remote_stats:
                # Shared-tier traffic since this problem was constructed.
                for key, value in remote_stats().items():
                    stats[f"remote_{key}"] = value - self._remote_baseline.get(key, 0)
        return stats

    # -------------------------------------------------------------- #
    # GA operators
    # -------------------------------------------------------------- #
    def crossover(
        self, parent_a: List[int], parent_b: List[int], rng: random.Random
    ) -> Tuple[List[int], List[int]]:
        """Segment-wise PMX crossover preserving the pinned first function."""
        child_a, child_b = self.space.crossover(parent_a, parent_b, rng, method="pmx")
        if self.fix_first_function:
            child_a = self._pin_first_function(child_a)
            child_b = self._pin_first_function(child_b)
        return child_a, child_b

    def mutate(self, genotype: List[int], rng: random.Random) -> List[int]:
        """Segment-wise swap/shuffle mutation preserving the pinned function."""
        mutated = self.space.mutate(genotype, rng)
        if self.fix_first_function:
            mutated = self._pin_first_function(mutated)
        return mutated


@dataclass
class PinOptimizationResult:
    """The outcome of Phase II."""

    best_assignment: PinAssignment
    best_area: float
    merged_design: MergedDesign
    synthesis: SynthesisResult
    ga_result: GAResult
    history: List[GenerationStats] = field(default_factory=list)
    #: Fitness-cache counters from :meth:`PinAssignmentProblem.cache_stats`.
    cache_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def evaluations(self) -> int:
        """Number of distinct genotypes the GA evaluated."""
        return self.ga_result.evaluations

    def telemetry(self, label: str = "") -> "RunTelemetry":
        """The Phase II run as a unified telemetry record.

        ``cache`` scope carries the fitness-cache counters, ``ga`` the
        generation/evaluation summary of the search itself.
        """
        from ..telemetry import RunTelemetry

        record = RunTelemetry.from_cache_stats(self.cache_stats, label=label)
        return record.merged(
            RunTelemetry.from_ga_history(
                self.history,
                stopped_early=getattr(self.ga_result, "stopped_early", False),
            ),
            label=label,
        )


def optimize_pin_assignment(
    functions: Sequence[BoolFunction],
    parameters: Optional[GAParameters] = None,
    library: Optional[CellLibrary] = None,
    effort: str = SynthesisEffort.FAST,
    final_effort: str = SynthesisEffort.STANDARD,
    seed_identity: bool = True,
    progress: Optional[Callable[[GenerationStats], None]] = None,
    jobs: int = 1,
    scheduler: Optional[str] = None,
) -> PinOptimizationResult:
    """Run the Phase II genetic algorithm and return the best pin assignment.

    ``effort`` controls the synthesis effort used inside the fitness loop
    (fast by default, as in an exploration loop); ``final_effort`` is used
    for the one final synthesis of the winning assignment.  ``jobs`` sets the
    number of worker processes used for fitness evaluation (1 = serial);
    seeded results are identical for every ``jobs`` value.  ``scheduler``
    names the synthesis pass-scheduling strategy (plumbed by name so it
    crosses worker-pool boundaries); the default fixed scheduler preserves
    the historic byte-identical behaviour.
    """
    problem = PinAssignmentProblem(functions, library=library, effort=effort,
                                   scheduler=scheduler)
    parameters = parameters or GAParameters()
    engine = GeneticAlgorithm(
        sample=problem.random_genotype,
        evaluate=problem.evaluate,
        crossover=problem.crossover,
        mutate=problem.mutate,
        parameters=parameters,
        jobs=jobs,
    )
    initial = [problem.space.identity_genotype()] if seed_identity else None
    ga_result = engine.run(initial_population=initial, progress=progress)

    if jobs > 1:
        # Some (possibly all) fitness evaluations ran in worker processes,
        # invisible to the parent problem object: feed the engine's results
        # back into the shared cache (restoring GA <-> random-search
        # sharing).
        for key, fitness in engine.cached_fitnesses():
            problem.store(key, fitness)
    stats = problem.cache_stats()
    # Distinct evaluations the parent's counters did not see ran in worker
    # processes; count them as synthesis runs (worker-local signature hits
    # are not observable, so this is an upper bound on actual synths).
    # Evaluations the pool ran inline (clamped workers, single-item batches)
    # are already in the parent's counters and must not be double-counted —
    # nor must evaluations answered by the persistent disk cache.
    worker_evaluations = (
        engine.evaluations
        - stats["evaluations"]
        - stats["signature_hits"]
        - stats.get("disk_hits", 0)
    )
    if worker_evaluations > 0:
        stats["evaluations"] += worker_evaluations
    # The engine's genotype cache shields the problem object from duplicate
    # requests, so the engine-level hits are part of the workload's total.
    stats["genotype_hits"] += engine.cache_hits

    best_assignment = problem.assignment_from_genotype(ga_result.best_genotype)
    merged = merge_functions(functions, best_assignment)
    final = synthesize(merged.function, library=problem.library, effort=final_effort,
                       scheduler=scheduler)
    best_area = min(final.area, ga_result.best_fitness)
    return PinOptimizationResult(
        best_assignment=best_assignment,
        best_area=best_area,
        merged_design=merged,
        synthesis=final,
        ga_result=ga_result,
        history=list(ga_result.history),
        cache_stats=stats,
    )

"""Phase II: genetic-algorithm optimisation of pin assignments.

The fitness of a pin assignment is the gate-equivalent area of the merged
circuit after synthesis — exactly the loop the paper runs with DEAP driving
ABC.  Synthesis is by far the dominant cost, so fitness evaluations are
cached by genotype (the GA engine also caches, but the problem object keeps
its own cache so random search and the GA can share evaluations).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..logic.boolfunc import BoolFunction
from ..merge.merged import MergedDesign, merge_functions
from ..merge.pinassign import PinAssignment
from ..netlist.library import CellLibrary, standard_cell_library
from ..synth.script import SynthesisEffort, SynthesisResult, synthesize
from .engine import GAParameters, GAResult, GenerationStats, GeneticAlgorithm
from .operators import SegmentedPermutationSpace

__all__ = ["PinAssignmentProblem", "PinOptimizationResult", "optimize_pin_assignment"]


class PinAssignmentProblem:
    """Fitness machinery shared by the GA and the random-search baseline."""

    def __init__(
        self,
        functions: Sequence[BoolFunction],
        library: Optional[CellLibrary] = None,
        effort: str = SynthesisEffort.FAST,
        fix_first_function: bool = True,
    ):
        if not functions:
            raise ValueError("at least one viable function is required")
        self.functions = list(functions)
        self.library = library or standard_cell_library()
        self.effort = effort
        self.fix_first_function = fix_first_function
        self.num_inputs = functions[0].num_inputs
        self.num_outputs = functions[0].num_outputs
        for function in functions:
            if (
                function.num_inputs != self.num_inputs
                or function.num_outputs != self.num_outputs
            ):
                raise ValueError("all viable functions must have the same shape")
        segment_sizes = [self.num_inputs] * len(functions) + [self.num_outputs] * len(functions)
        self.space = SegmentedPermutationSpace(segment_sizes)
        self._area_cache: Dict[Tuple[int, ...], float] = {}
        self.evaluations = 0

    # -------------------------------------------------------------- #
    # Genotype plumbing
    # -------------------------------------------------------------- #
    def assignment_from_genotype(self, genotype: Sequence[int]) -> PinAssignment:
        """Convert a flat genotype into a :class:`PinAssignment`."""
        return PinAssignment.from_genotype(
            list(genotype), len(self.functions), self.num_inputs, self.num_outputs
        )

    def random_genotype(self, rng: random.Random) -> List[int]:
        """Sample a random genotype (function 0 optionally pinned to identity)."""
        genotype = self.space.random_genotype(rng)
        if self.fix_first_function:
            genotype = self._pin_first_function(genotype)
        return genotype

    def _pin_first_function(self, genotype: List[int]) -> List[int]:
        """Force function 0's permutations to identity (removes symmetry)."""
        segments = self.space.split(genotype)
        segments[0] = list(range(self.num_inputs))
        segments[len(self.functions)] = list(range(self.num_outputs))
        return self.space.join(segments)

    # -------------------------------------------------------------- #
    # Fitness
    # -------------------------------------------------------------- #
    def synthesize_genotype(self, genotype: Sequence[int]) -> SynthesisResult:
        """Synthesise the merged circuit for a genotype (not cached)."""
        assignment = self.assignment_from_genotype(genotype)
        design = merge_functions(self.functions, assignment)
        return synthesize(design.function, library=self.library, effort=self.effort)

    def evaluate(self, genotype: Sequence[int]) -> float:
        """Synthesised area (GE) of the merged circuit for this genotype."""
        key = tuple(genotype)
        cached = self._area_cache.get(key)
        if cached is not None:
            return cached
        result = self.synthesize_genotype(genotype)
        self._area_cache[key] = result.area
        self.evaluations += 1
        return result.area

    # -------------------------------------------------------------- #
    # GA operators
    # -------------------------------------------------------------- #
    def crossover(
        self, parent_a: List[int], parent_b: List[int], rng: random.Random
    ) -> Tuple[List[int], List[int]]:
        """Segment-wise PMX crossover preserving the pinned first function."""
        child_a, child_b = self.space.crossover(parent_a, parent_b, rng, method="pmx")
        if self.fix_first_function:
            child_a = self._pin_first_function(child_a)
            child_b = self._pin_first_function(child_b)
        return child_a, child_b

    def mutate(self, genotype: List[int], rng: random.Random) -> List[int]:
        """Segment-wise swap/shuffle mutation preserving the pinned function."""
        mutated = self.space.mutate(genotype, rng)
        if self.fix_first_function:
            mutated = self._pin_first_function(mutated)
        return mutated


@dataclass
class PinOptimizationResult:
    """The outcome of Phase II."""

    best_assignment: PinAssignment
    best_area: float
    merged_design: MergedDesign
    synthesis: SynthesisResult
    ga_result: GAResult
    history: List[GenerationStats] = field(default_factory=list)

    @property
    def evaluations(self) -> int:
        """Number of synthesis runs performed by the GA."""
        return self.ga_result.evaluations


def optimize_pin_assignment(
    functions: Sequence[BoolFunction],
    parameters: Optional[GAParameters] = None,
    library: Optional[CellLibrary] = None,
    effort: str = SynthesisEffort.FAST,
    final_effort: str = SynthesisEffort.STANDARD,
    seed_identity: bool = True,
    progress: Optional[Callable[[GenerationStats], None]] = None,
) -> PinOptimizationResult:
    """Run the Phase II genetic algorithm and return the best pin assignment.

    ``effort`` controls the synthesis effort used inside the fitness loop
    (fast by default, as in an exploration loop); ``final_effort`` is used
    for the one final synthesis of the winning assignment.
    """
    problem = PinAssignmentProblem(functions, library=library, effort=effort)
    parameters = parameters or GAParameters()
    engine = GeneticAlgorithm(
        sample=problem.random_genotype,
        evaluate=problem.evaluate,
        crossover=problem.crossover,
        mutate=problem.mutate,
        parameters=parameters,
    )
    initial = [problem.space.identity_genotype()] if seed_identity else None
    ga_result = engine.run(initial_population=initial, progress=progress)

    best_assignment = problem.assignment_from_genotype(ga_result.best_genotype)
    merged = merge_functions(functions, best_assignment)
    final = synthesize(merged.function, library=problem.library, effort=final_effort)
    best_area = min(final.area, ga_result.best_fitness)
    return PinOptimizationResult(
        best_assignment=best_assignment,
        best_area=best_area,
        merged_design=merged,
        synthesis=final,
        ga_result=ga_result,
        history=list(ga_result.history),
    )

"""Phase II: genetic-algorithm pin-assignment optimisation and baselines."""

from .engine import GAParameters, GAResult, GenerationStats, GeneticAlgorithm
from .operators import (
    SegmentedPermutationSpace,
    order_crossover,
    pmx_crossover,
    shuffle_mutation,
    swap_mutation,
)
from .pinopt import PinAssignmentProblem, PinOptimizationResult, optimize_pin_assignment
from .random_search import RandomSearchResult, random_pin_search

__all__ = [
    "GAParameters",
    "GAResult",
    "GenerationStats",
    "GeneticAlgorithm",
    "SegmentedPermutationSpace",
    "pmx_crossover",
    "order_crossover",
    "swap_mutation",
    "shuffle_mutation",
    "PinAssignmentProblem",
    "PinOptimizationResult",
    "optimize_pin_assignment",
    "RandomSearchResult",
    "random_pin_search",
]

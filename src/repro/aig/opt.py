"""AIG optimisation passes: balance, rewrite, refactor.

These passes play the role of the ABC commands of the same names that the
paper's synthesis script uses.  Each pass is functional: it consumes an AIG
and returns a new, compacted AIG.

* :func:`balance` rebuilds maximal AND trees as balanced trees (with
  structural hashing this also merges duplicated subtrees).
* :func:`rewrite` enumerates 4-input cuts per node, resynthesises the cut
  function through ISOP + algebraic factoring, and accepts the replacement
  when the resynthesised cone is smaller than the logic it frees (the
  maximum fanout-free cone bounded by the cut).
* :func:`refactor` does the same with a single, larger cone per node.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..logic.expr import Expression
from ..logic.factoring import factor_table
from ..logic.truthtable import TruthTable
from .aig import FALSE_LIT, TRUE_LIT, Aig, is_complemented, negate, node_of
from .build import build_expression
from .cuts import collect_cone_cut, cut_function, enumerate_cuts, mffc_size

__all__ = ["balance", "rewrite", "refactor", "strash", "apply_pass", "known_passes"]


def strash(aig: Aig) -> Aig:
    """Re-hash the AIG (removes dead and duplicate nodes)."""
    return aig.compact()


def apply_pass(aig: Aig, pass_name: str) -> Aig:
    """Apply a named optimisation pass (the registry behind the schedulers)."""
    try:
        return _PASS_REGISTRY[pass_name](aig)
    except KeyError:
        raise ValueError(f"unknown synthesis pass {pass_name!r}") from None


def known_passes() -> List[str]:
    """Names of every registered optimisation pass, in canonical order."""
    return list(_PASS_REGISTRY)


def balance(aig: Aig) -> Aig:
    """Rebuild maximal AND trees as balanced trees."""
    result = Aig(aig.name)
    mapping: Dict[int, int] = {0: FALSE_LIT}
    for index in range(aig.num_inputs):
        node = node_of(aig.input_literal(index))
        mapping[node] = result.add_input(aig.input_names[index])

    reference = aig.reference_counts()
    level_cache: Dict[int, int] = {0: 0}

    def _level_of(literal: int) -> int:
        """Logic level of a node in the new AIG (memoised; AIG is append-only)."""
        node = node_of(literal)
        cached = level_cache.get(node)
        if cached is not None:
            return cached
        if result.is_and_node(node):
            fanin0, fanin1 = result.fanins(node)
            value = 1 + max(_level_of(fanin0), _level_of(fanin1))
        else:
            value = 0
        level_cache[node] = value
        return value

    def _map_literal(literal: int) -> int:
        mapped = mapping[node_of(literal)]
        return negate(mapped) if is_complemented(literal) else mapped

    def _collect_tree(literal: int, root: bool) -> List[int]:
        """Collect the leaves of the maximal single-fanout AND tree under ``literal``."""
        node = node_of(literal)
        if (
            is_complemented(literal)
            or not aig.is_and_node(node)
            or (not root and reference.get(node, 0) > 1)
        ):
            return [literal]
        fanin0, fanin1 = aig.fanins(node)
        return _collect_tree(fanin0, False) + _collect_tree(fanin1, False)

    for node in aig.and_nodes():
        leaves = _collect_tree(Aig.lit(node), True)
        mapped_leaves = [_map_literal(leaf) for leaf in leaves]
        # Sort by level in the new AIG so the tree is balanced by arrival time.
        mapped_leaves.sort(key=_level_of)
        mapping[node] = result.and_many(mapped_leaves)

    for literal, name in zip(aig.outputs, aig.output_names):
        result.add_output(_map_literal(literal), name)
    return result.compact()


#: (num_vars, bits) -> (factored expression, AND-node cost).  Algebraic
#: factoring through ISOP is the single most expensive step of the rewrite
#: and refactor passes, and the same small cut functions recur across every
#: pass invocation and every Phase II genotype evaluation, so the cache is a
#: process-wide singleton rather than per-pass state.  Expressions are
#: immutable, making sharing safe; the bound keeps memory in check.
_FACTORED_FORM_CACHE: Dict[Tuple[int, int], Tuple[Expression, int]] = {}
_FACTORED_FORM_CACHE_LIMIT = 1 << 16


def clear_factored_form_cache() -> None:
    """Drop the global factored-form cache (mainly for tests/benchmarks)."""
    _FACTORED_FORM_CACHE.clear()


def factored_form_cache_size() -> int:
    """Number of memoised factored forms currently held."""
    return len(_FACTORED_FORM_CACHE)


class _Resynthesizer:
    """Shared machinery: resynthesise a cut function and estimate its cost."""

    def factored_form(self, table: TruthTable) -> Tuple[Expression, int]:
        """Return the factored expression of ``table`` and its AND-node cost."""
        key = (table.num_vars, table.bits)
        cached = _FACTORED_FORM_CACHE.get(key)
        if cached is not None:
            return cached
        expression = factor_table(table)
        cost = self._count_cost(expression, table.num_vars)
        if len(_FACTORED_FORM_CACHE) >= _FACTORED_FORM_CACHE_LIMIT:
            _FACTORED_FORM_CACHE.clear()
        _FACTORED_FORM_CACHE[key] = (expression, cost)
        return expression, cost

    @staticmethod
    def _count_cost(expression: Expression, num_vars: int) -> int:
        scratch = Aig("scratch")
        literals = {f"x{index}": scratch.add_input() for index in range(num_vars)}
        output = build_expression(scratch, expression, literals)
        scratch.add_output(output)
        return scratch.num_live_ands()


def rewrite(
    aig: Aig,
    max_leaves: int = 4,
    max_cuts_per_node: int = 8,
    zero_gain: bool = False,
) -> Aig:
    """Cut-based resynthesis (the ABC ``rewrite`` analogue)."""
    cuts = enumerate_cuts(aig, max_leaves=max_leaves, max_cuts_per_node=max_cuts_per_node)
    plans = _plan_replacements(aig, cuts, zero_gain)
    return _rebuild(aig, plans)


def refactor(
    aig: Aig,
    max_leaves: int = 8,
    zero_gain: bool = False,
) -> Aig:
    """Cone-based resynthesis (the ABC ``refactor`` analogue)."""
    cone_cuts: Dict[int, List] = {}
    for node in aig.and_nodes():
        cut = collect_cone_cut(aig, node, max_leaves)
        if len(cut) >= 2 and cut != frozenset({node}):
            cone_cuts[node] = [frozenset({node}), cut]
        else:
            cone_cuts[node] = [frozenset({node})]
    plans = _plan_replacements(aig, cone_cuts, zero_gain)
    return _rebuild(aig, plans)


def _rewrite_z(aig: Aig) -> Aig:
    return rewrite(aig, zero_gain=True)


def _refactor_z(aig: Aig) -> Aig:
    return refactor(aig, zero_gain=True)


#: Canonical pass registry.  The scheduler layer in :mod:`repro.synth.script`
#: draws its arms from here; adding a pass makes it schedulable everywhere.
_PASS_REGISTRY = {
    "balance": balance,
    "rewrite": rewrite,
    "rewrite-z": _rewrite_z,
    "refactor": refactor,
    "refactor-z": _refactor_z,
}


def _plan_replacements(
    aig: Aig,
    cuts: Dict[int, List],
    zero_gain: bool,
) -> Dict[int, Tuple[Expression, List[int]]]:
    """Select, per node, the best resynthesis (if any improves on the MFFC)."""
    resynthesizer = _Resynthesizer()
    reference = aig.reference_counts()
    plans: Dict[int, Tuple[Expression, List[int]]] = {}
    minimum_gain = 0 if zero_gain else 1
    for node in aig.and_nodes():
        best_gain = minimum_gain - 1
        best_plan: Optional[Tuple[Expression, List[int]]] = None
        for cut in cuts.get(node, []):
            if len(cut) < 2 or node in cut:
                continue
            table, leaves = cut_function(aig, node, cut)
            expression, cost = resynthesizer.factored_form(table)
            freed = mffc_size(aig, node, cut, reference)
            gain = freed - cost
            if gain > best_gain:
                best_gain = gain
                best_plan = (expression, leaves)
        if best_plan is not None:
            plans[node] = best_plan
    return plans


def _rebuild(aig: Aig, plans: Dict[int, Tuple[Expression, List[int]]]) -> Aig:
    """Rebuild the AIG applying the chosen per-node resyntheses."""
    result = Aig(aig.name)
    mapping: Dict[int, int] = {0: FALSE_LIT}
    for index in range(aig.num_inputs):
        node = node_of(aig.input_literal(index))
        mapping[node] = result.add_input(aig.input_names[index])

    def _map_literal(literal: int) -> int:
        mapped = mapping[node_of(literal)]
        return negate(mapped) if is_complemented(literal) else mapped

    for node in aig.and_nodes():
        plan = plans.get(node)
        if plan is None:
            fanin0, fanin1 = aig.fanins(node)
            mapping[node] = result.and_(_map_literal(fanin0), _map_literal(fanin1))
            continue
        expression, leaves = plan
        literals = {f"x{index}": mapping[leaf] for index, leaf in enumerate(leaves)}
        mapping[node] = build_expression(result, expression, literals)

    for literal, name in zip(aig.outputs, aig.output_names):
        result.add_output(_map_literal(literal), name)
    return result.compact()

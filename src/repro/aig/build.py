"""AIG construction from functional and structural descriptions.

The multi-function merged circuits of Phase I are defined functionally
(truth tables), so the main entry point is :func:`aig_from_function`, which
performs a Shannon (BDD-style) decomposition with cofactor memoisation: equal
sub-functions are built once, which is what gives the initial netlist its
logic sharing across the merged viable functions.

Expressions (used by the refactor pass and by examples) and mapped netlists
(for re-entry from BLIF) can also be converted.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from ..logic.boolfunc import BoolFunction
from ..logic.expr import And, Const, Expression, Not, Or, Var, Xor
from ..logic.truthtable import TruthTable
from ..netlist.netlist import CONST0_NET, CONST1_NET, Netlist
from .aig import FALSE_LIT, TRUE_LIT, Aig, negate

__all__ = [
    "aig_from_tables",
    "aig_from_function",
    "aig_from_expression",
    "build_expression",
    "aig_from_netlist",
    "build_table",
]


def aig_from_tables(
    tables: Sequence[TruthTable],
    input_names: Optional[Sequence[str]] = None,
    output_names: Optional[Sequence[str]] = None,
    name: str = "aig",
) -> Aig:
    """Build an AIG computing the given output truth tables.

    All tables must share the same number of inputs.  Construction uses
    Shannon decomposition with memoisation on the cofactor truth table, so
    identical sub-functions (within one output or across outputs) are shared.
    """
    if not tables:
        raise ValueError("at least one output table is required")
    num_inputs = tables[0].num_vars
    for table in tables:
        if table.num_vars != num_inputs:
            raise ValueError("all output tables must have the same number of inputs")
    aig = Aig(name)
    input_literals = [
        aig.add_input(input_names[k] if input_names else None) for k in range(num_inputs)
    ]
    memo: Dict[int, int] = {}
    for index, table in enumerate(tables):
        literal = build_table(aig, table, input_literals, memo)
        aig.add_output(literal, output_names[index] if output_names else None)
    return aig


def build_table(
    aig: Aig,
    table: TruthTable,
    input_literals: Sequence[int],
    memo: Optional[Dict[int, int]] = None,
) -> int:
    """Build (or reuse) logic for ``table`` inside an existing AIG.

    ``input_literals[k]`` is the literal to use for table variable ``k``.
    ``memo`` maps packed table bits to already-built literals; passing the
    same dictionary across calls shares logic between outputs.
    """
    if table.num_vars != len(input_literals):
        raise ValueError("one literal per table variable is required")
    if memo is None:
        memo = {}
    return _shannon(aig, table, list(input_literals), memo)


def _shannon(
    aig: Aig,
    table: TruthTable,
    input_literals: List[int],
    memo: Dict[int, int],
) -> int:
    if table.is_constant_zero():
        return FALSE_LIT
    if table.is_constant_one():
        return TRUE_LIT
    cached = memo.get(table.bits)
    if cached is not None:
        return cached
    # Also reuse the complement when it has been built already.
    complement_bits = (~table).bits
    cached = memo.get(complement_bits)
    if cached is not None:
        literal = negate(cached)
        memo[table.bits] = literal
        return literal

    split = _choose_split(table)
    positive = table.cofactor(split, 1)
    negative = table.cofactor(split, 0)
    select = input_literals[split]

    if positive == negative:
        literal = _shannon(aig, positive, input_literals, memo)
        memo[table.bits] = literal
        return literal

    literal_pos = _shannon(aig, positive, input_literals, memo)
    literal_neg = _shannon(aig, negative, input_literals, memo)
    literal = aig.mux_(select, literal_pos, literal_neg)
    memo[table.bits] = literal
    return literal


def _choose_split(table: TruthTable) -> int:
    """Pick the highest-index variable in the support (a stable BDD-like order)."""
    support = table.support()
    if not support:
        raise ValueError("constant tables are handled before splitting")
    return support[-1]


def aig_from_function(function: BoolFunction, name: Optional[str] = None) -> Aig:
    """Build an AIG from a multi-output :class:`BoolFunction`."""
    return aig_from_tables(
        function.outputs,
        input_names=function.input_names,
        output_names=function.output_names,
        name=name or function.name,
    )


def aig_from_expression(
    expression: Expression,
    variable_order: Sequence[str],
    name: str = "aig",
) -> Aig:
    """Build a single-output AIG from a Boolean expression."""
    aig = Aig(name)
    literals = {var: aig.add_input(var) for var in variable_order}
    output = build_expression(aig, expression, literals)
    aig.add_output(output, "f")
    return aig


def build_expression(
    aig: Aig, expression: Expression, variable_literals: Mapping[str, int]
) -> int:
    """Build logic for ``expression`` inside an existing AIG.

    ``variable_literals`` maps variable names to AIG literals.
    """
    if isinstance(expression, Const):
        return TRUE_LIT if expression.value else FALSE_LIT
    if isinstance(expression, Var):
        try:
            return variable_literals[expression.name]
        except KeyError as exc:
            raise KeyError(
                f"no AIG literal bound to expression variable {expression.name!r}"
            ) from exc
    if isinstance(expression, Not):
        return negate(build_expression(aig, expression.operand, variable_literals))
    if isinstance(expression, And):
        operands = [
            build_expression(aig, operand, variable_literals)
            for operand in expression.operands
        ]
        return aig.and_many(operands)
    if isinstance(expression, Or):
        operands = [
            build_expression(aig, operand, variable_literals)
            for operand in expression.operands
        ]
        return aig.or_many(operands)
    if isinstance(expression, Xor):
        operands = [
            build_expression(aig, operand, variable_literals)
            for operand in expression.operands
        ]
        result = operands[0]
        for operand in operands[1:]:
            result = aig.xor_(result, operand)
        return result
    raise TypeError(f"unsupported expression node {type(expression).__name__}")


def aig_from_netlist(netlist: Netlist, name: Optional[str] = None) -> Aig:
    """Convert a mapped netlist back into an AIG (for re-optimisation)."""
    aig = Aig(name or netlist.name)
    literals: Dict[str, int] = {CONST0_NET: FALSE_LIT, CONST1_NET: TRUE_LIT}
    for net in netlist.primary_inputs:
        literals[net] = aig.add_input(net)
    memo: Dict[int, int] = {}
    for instance in netlist.topological_order():
        cell = netlist.library[instance.cell]
        fanin_literals = [literals[net] for net in instance.inputs]
        literals[instance.output] = build_table(aig, cell.function, fanin_literals, memo={})
    for net in netlist.primary_outputs:
        aig.add_output(literals[net], net)
    return aig

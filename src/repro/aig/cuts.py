"""k-feasible cut enumeration and cone analysis on AIGs.

Cut enumeration is the work-horse of the rewrite pass: for every AND node we
enumerate small sets of "leaf" nodes (the cut) such that the node's function
can be expressed over the leaves alone.  The module also provides the cut
function computation and the maximum-fanout-free-cone (MFFC) size used to
estimate the gain of replacing a cone.

Cut functions are memoised *across* AIGs: the truth table of a cone depends
only on its local structure (how the cone's AND nodes wire the leaves
together), so a structural descriptor of the cone serves as a cache key that
keeps working between rewrite/refactor invocations and between genotype
evaluations of the Phase II search, where the same small cones recur
constantly.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Tuple

from ..logic.truthtable import TruthTable
from .aig import Aig, is_complemented, node_of

__all__ = ["enumerate_cuts", "cut_function", "mffc_size", "collect_cone_cut"]

Cut = FrozenSet[int]

#: Structural cone descriptor -> packed truth-table bits of the cone output.
#: Bounded: cleared wholesale when full (entries are cheap to recompute).
_CONE_CACHE: Dict[Tuple, int] = {}
_CONE_CACHE_LIMIT = 1 << 16


def clear_cut_function_cache() -> None:
    """Drop all memoised cone functions (mainly for tests/benchmarks)."""
    _CONE_CACHE.clear()


def cut_function_cache_size() -> int:
    """Number of memoised cone functions currently held."""
    return len(_CONE_CACHE)


def enumerate_cuts(
    aig: Aig, max_leaves: int = 4, max_cuts_per_node: int = 8
) -> Dict[int, List[Cut]]:
    """Enumerate k-feasible cuts for every node of the AIG.

    Returns a mapping from node id to a list of cuts (each cut is a frozenset
    of leaf node ids).  The trivial cut ``{node}`` is always included and is
    always the first element.
    """
    cuts: Dict[int, List[Cut]] = {}
    for node in range(1, aig.num_nodes):
        trivial: Cut = frozenset({node})
        if aig.is_input_node(node):
            cuts[node] = [trivial]
            continue
        fanin0, fanin1 = aig.fanins(node)
        candidates: List[Cut] = [trivial]
        seen = {trivial}
        for cut0 in cuts[node_of(fanin0)]:
            for cut1 in cuts[node_of(fanin1)]:
                merged = cut0 | cut1
                if len(merged) > max_leaves:
                    continue
                if merged in seen:
                    continue
                if _is_dominated(merged, candidates):
                    continue
                seen.add(merged)
                candidates.append(merged)
        # Keep the trivial cut plus the smallest non-trivial cuts.
        non_trivial = sorted(candidates[1:], key=lambda cut: (len(cut), sorted(cut)))
        cuts[node] = [trivial] + non_trivial[: max_cuts_per_node - 1]
    return cuts


def _is_dominated(candidate: Cut, existing: Sequence[Cut]) -> bool:
    """Return True if an existing cut is a subset of ``candidate``."""
    return any(cut != candidate and cut <= candidate for cut in existing[1:])


def _cone_topological_order(aig: Aig, root: int, cut: Cut) -> List[int]:
    """AND nodes of the cone of ``root`` bounded by ``cut``, fanins first."""
    order: List[int] = []
    visited = set(cut)
    stack: List[Tuple[int, bool]] = [(root, False)]
    while stack:
        node, emit = stack.pop()
        if emit:
            order.append(node)
            continue
        if node in visited:
            continue
        visited.add(node)
        if not aig.is_and_node(node):
            raise ValueError(f"node {node} is outside the cut cone but not a leaf")
        fanin0, fanin1 = aig.fanins(node)
        stack.append((node, True))
        for fanin in (node_of(fanin1), node_of(fanin0)):
            if fanin not in visited:
                stack.append((fanin, False))
    return order


def cut_function(aig: Aig, root: int, cut: Cut) -> Tuple[TruthTable, List[int]]:
    """Return the function of ``root`` over the cut leaves.

    The leaves are ordered by node id; the returned list gives that order so
    the caller knows which truth-table variable corresponds to which leaf.
    Results are memoised on the cone's local structure, so identical cones in
    different AIGs (or in successive passes over the same design) share one
    computation.
    """
    leaves = sorted(cut)
    num_vars = len(leaves)
    if root in cut:
        index = leaves.index(root)
        return TruthTable.variable(index, num_vars), leaves

    order = _cone_topological_order(aig, root, cut)

    # Structural descriptor: every cone node encoded by its two fanin slots,
    # each slot a (position, complement) pair where position indexes the
    # sorted leaves followed by the cone nodes in topological order.
    position: Dict[int, int] = {leaf: index for index, leaf in enumerate(leaves)}
    descriptor: List[Tuple[int, int]] = []
    for node in order:
        fanin0, fanin1 = aig.fanins(node)
        slot0 = position[node_of(fanin0)] * 2 + (1 if is_complemented(fanin0) else 0)
        slot1 = position[node_of(fanin1)] * 2 + (1 if is_complemented(fanin1) else 0)
        descriptor.append((slot0, slot1))
        position[node] = len(position)
    key = (num_vars, tuple(descriptor))

    bits = _CONE_CACHE.get(key)
    if bits is not None:
        return TruthTable(num_vars, bits), leaves

    tables: Dict[int, TruthTable] = {
        leaf: TruthTable.variable(index, num_vars) for index, leaf in enumerate(leaves)
    }
    for node in order:
        fanin0, fanin1 = aig.fanins(node)
        table0 = tables[node_of(fanin0)]
        if is_complemented(fanin0):
            table0 = ~table0
        table1 = tables[node_of(fanin1)]
        if is_complemented(fanin1):
            table1 = ~table1
        tables[node] = table0 & table1

    result = tables[root]
    if len(_CONE_CACHE) >= _CONE_CACHE_LIMIT:
        _CONE_CACHE.clear()
    _CONE_CACHE[key] = result.bits
    return result, leaves


def mffc_size(aig: Aig, root: int, cut: Cut, reference_counts: Dict[int, int]) -> int:
    """Return the number of AND nodes freed if ``root`` were re-expressed over ``cut``.

    This is the size of the maximum fanout-free cone of ``root`` bounded by
    the cut leaves: the nodes whose only remaining references come from inside
    the cone.  ``reference_counts`` must be the current fanout counts of the
    AIG (they are not modified).
    """
    local_refs = dict(reference_counts)
    freed = 0
    stack = [root]
    first = True
    while stack:
        node = stack.pop()
        if node in cut and not first:
            continue
        if not aig.is_and_node(node):
            continue
        if not first and local_refs.get(node, 0) > 0:
            continue
        freed += 1
        first = False
        fanin0, fanin1 = aig.fanins(node)
        for fanin in (node_of(fanin0), node_of(fanin1)):
            if fanin in cut or not aig.is_and_node(fanin):
                continue
            local_refs[fanin] = local_refs.get(fanin, 0) - 1
            if local_refs[fanin] <= 0:
                stack.append(fanin)
    return freed


def collect_cone_cut(aig: Aig, root: int, max_leaves: int) -> Cut:
    """Greedily grow a cut for ``root`` by expanding AND leaves until the limit.

    Used by the refactor pass, which resynthesises one larger cone per node
    instead of many small cuts.
    """
    leaves = {root}
    while True:
        expandable = [
            leaf
            for leaf in leaves
            if aig.is_and_node(leaf)
        ]
        if not expandable:
            break
        progressed = False
        # Expand the leaf whose expansion keeps the cut smallest.
        expandable.sort(key=lambda leaf: leaf, reverse=True)
        for leaf in expandable:
            fanin0, fanin1 = aig.fanins(leaf)
            new_leaves = (leaves - {leaf}) | {node_of(fanin0), node_of(fanin1)}
            if len(new_leaves) <= max_leaves:
                leaves = new_leaves
                progressed = True
                break
        if not progressed:
            break
    return frozenset(leaves)

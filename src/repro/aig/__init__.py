"""And-Inverter Graph substrate: representation, construction, optimisation."""

from .aig import FALSE_LIT, TRUE_LIT, Aig, AigError
from .build import (
    aig_from_expression,
    aig_from_function,
    aig_from_netlist,
    aig_from_tables,
    build_expression,
    build_table,
)
from .cuts import collect_cone_cut, cut_function, enumerate_cuts, mffc_size
from .opt import balance, refactor, rewrite, strash

__all__ = [
    "Aig",
    "AigError",
    "FALSE_LIT",
    "TRUE_LIT",
    "aig_from_tables",
    "aig_from_function",
    "aig_from_expression",
    "aig_from_netlist",
    "build_expression",
    "build_table",
    "enumerate_cuts",
    "cut_function",
    "mffc_size",
    "collect_cone_cut",
    "balance",
    "rewrite",
    "refactor",
    "strash",
]

"""And-Inverter Graph (AIG) with structural hashing.

The AIG is the internal representation of the synthesis engine
(:mod:`repro.synth`), playing the role ABC plays in the paper.  Nodes are
two-input AND gates; edges may be complemented.  Literals follow the usual
AIGER convention: literal ``2*n`` is node ``n`` and ``2*n + 1`` is its
complement; node 0 is the constant FALSE, so literal 0 is constant false and
literal 1 is constant true.

The class offers:

* construction with structural hashing and the standard local
  simplifications (idempotence, annihilation, complement cancellation);
* convenience builders for OR/XOR/MUX and balanced n-ary trees;
* bit-parallel evaluation into packed truth tables;
* cone extraction / compaction (dead-node elimination).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..logic.boolfunc import BoolFunction
from ..logic.truthtable import TruthTable

__all__ = ["Aig", "AigError", "FALSE_LIT", "TRUE_LIT"]

FALSE_LIT = 0
TRUE_LIT = 1


class AigError(Exception):
    """Raised for malformed AIG operations."""


def lit_of(node: int, complemented: bool = False) -> int:
    """Build a literal from a node index and a complement flag."""
    return (node << 1) | (1 if complemented else 0)


def node_of(lit: int) -> int:
    """Return the node index of a literal."""
    return lit >> 1


def is_complemented(lit: int) -> bool:
    """Return True if the literal is complemented."""
    return bool(lit & 1)


def negate(lit: int) -> int:
    """Return the complement of a literal."""
    return lit ^ 1


class Aig:
    """A combinational And-Inverter Graph."""

    def __init__(self, name: str = "aig"):
        self.name = name
        # Parallel arrays indexed by node id.  Node 0 is the constant node.
        self._fanin0: List[int] = [0]
        self._fanin1: List[int] = [0]
        self._is_input: List[bool] = [False]
        self._input_nodes: List[int] = []
        self._input_names: List[str] = []
        self._outputs: List[int] = []  # literals
        self._output_names: List[str] = []
        self._strash: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------ #
    # Literal helpers re-exported as static methods for caller convenience
    # ------------------------------------------------------------------ #
    lit = staticmethod(lit_of)
    node = staticmethod(node_of)
    is_negated = staticmethod(is_complemented)
    negate = staticmethod(negate)

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        """Total number of nodes including the constant and the inputs."""
        return len(self._fanin0)

    @property
    def num_inputs(self) -> int:
        """Number of primary inputs."""
        return len(self._input_nodes)

    @property
    def num_outputs(self) -> int:
        """Number of primary outputs."""
        return len(self._outputs)

    @property
    def num_ands(self) -> int:
        """Number of AND nodes (the usual AIG size metric)."""
        return self.num_nodes - 1 - self.num_inputs

    @property
    def input_names(self) -> List[str]:
        """Names of the primary inputs in order."""
        return list(self._input_names)

    @property
    def output_names(self) -> List[str]:
        """Names of the primary outputs in order."""
        return list(self._output_names)

    @property
    def outputs(self) -> List[int]:
        """Output literals in order."""
        return list(self._outputs)

    def input_literal(self, index: int) -> int:
        """Return the literal of primary input ``index``."""
        return lit_of(self._input_nodes[index])

    def is_input_node(self, node: int) -> bool:
        """Return True if ``node`` is a primary input."""
        return self._is_input[node]

    def is_and_node(self, node: int) -> bool:
        """Return True if ``node`` is an AND node."""
        return node != 0 and not self._is_input[node]

    def fanins(self, node: int) -> Tuple[int, int]:
        """Return the two fanin literals of an AND node."""
        if not self.is_and_node(node):
            raise AigError(f"node {node} is not an AND node")
        return self._fanin0[node], self._fanin1[node]

    def and_nodes(self) -> List[int]:
        """Return AND node indices in topological (creation) order."""
        return [n for n in range(1, self.num_nodes) if not self._is_input[n]]

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_input(self, name: Optional[str] = None) -> int:
        """Add a primary input and return its (non-complemented) literal."""
        node = len(self._fanin0)
        self._fanin0.append(0)
        self._fanin1.append(0)
        self._is_input.append(True)
        self._input_nodes.append(node)
        self._input_names.append(name if name is not None else f"i{len(self._input_names)}")
        return lit_of(node)

    def add_output(self, literal: int, name: Optional[str] = None) -> int:
        """Register a primary output; returns its index."""
        self._check_literal(literal)
        self._outputs.append(literal)
        self._output_names.append(
            name if name is not None else f"o{len(self._output_names)}"
        )
        return len(self._outputs) - 1

    def set_output(self, index: int, literal: int) -> None:
        """Redefine the literal of an existing output."""
        self._check_literal(literal)
        self._outputs[index] = literal

    def _check_literal(self, literal: int) -> None:
        if literal < 0 or node_of(literal) >= self.num_nodes:
            raise AigError(f"literal {literal} references a non-existent node")

    def and_(self, a: int, b: int) -> int:
        """Return a literal implementing ``a AND b`` (with strashing)."""
        self._check_literal(a)
        self._check_literal(b)
        # Local simplifications.
        if a == FALSE_LIT or b == FALSE_LIT:
            return FALSE_LIT
        if a == TRUE_LIT:
            return b
        if b == TRUE_LIT:
            return a
        if a == b:
            return a
        if a == negate(b):
            return FALSE_LIT
        key = (a, b) if a <= b else (b, a)
        existing = self._strash.get(key)
        if existing is not None:
            return lit_of(existing)
        node = len(self._fanin0)
        self._fanin0.append(key[0])
        self._fanin1.append(key[1])
        self._is_input.append(False)
        self._strash[key] = node
        return lit_of(node)

    def or_(self, a: int, b: int) -> int:
        """Return a literal implementing ``a OR b``."""
        return negate(self.and_(negate(a), negate(b)))

    def xor_(self, a: int, b: int) -> int:
        """Return a literal implementing ``a XOR b`` (3 AND nodes worst case)."""
        return self.or_(self.and_(a, negate(b)), self.and_(negate(a), b))

    def mux_(self, select: int, when_true: int, when_false: int) -> int:
        """Return ``select ? when_true : when_false``."""
        return self.or_(
            self.and_(select, when_true), self.and_(negate(select), when_false)
        )

    def and_many(self, literals: Sequence[int]) -> int:
        """Build a balanced AND tree over the literals."""
        return self._balanced_tree(list(literals), self.and_, TRUE_LIT)

    def or_many(self, literals: Sequence[int]) -> int:
        """Build a balanced OR tree over the literals."""
        return self._balanced_tree(list(literals), self.or_, FALSE_LIT)

    def _balanced_tree(self, literals: List[int], op, identity: int) -> int:
        if not literals:
            return identity
        layer = list(literals)
        while len(layer) > 1:
            next_layer: List[int] = []
            for index in range(0, len(layer) - 1, 2):
                next_layer.append(op(layer[index], layer[index + 1]))
            if len(layer) % 2:
                next_layer.append(layer[-1])
            layer = next_layer
        return layer[0]

    # ------------------------------------------------------------------ #
    # Analysis
    # ------------------------------------------------------------------ #
    def levels(self) -> Dict[int, int]:
        """Return the logic level of every node (inputs and constant are 0)."""
        level: Dict[int, int] = {0: 0}
        for node in self._input_nodes:
            level[node] = 0
        for node in range(1, self.num_nodes):
            if self._is_input[node]:
                continue
            f0, f1 = self._fanin0[node], self._fanin1[node]
            level[node] = 1 + max(level[node_of(f0)], level[node_of(f1)])
        return level

    def depth(self) -> int:
        """Return the maximum logic level over the outputs."""
        if not self._outputs:
            return 0
        level = self.levels()
        return max(level[node_of(lit)] for lit in self._outputs)

    def reference_counts(self) -> Dict[int, int]:
        """Return the fanout count of every node (outputs count as fanout)."""
        counts: Dict[int, int] = {node: 0 for node in range(self.num_nodes)}
        for node in range(1, self.num_nodes):
            if self._is_input[node]:
                continue
            counts[node_of(self._fanin0[node])] += 1
            counts[node_of(self._fanin1[node])] += 1
        for literal in self._outputs:
            counts[node_of(literal)] += 1
        return counts

    def live_nodes(self) -> List[int]:
        """Return nodes reachable from the outputs (plus constant and inputs)."""
        live = set()
        stack = [node_of(lit) for lit in self._outputs]
        while stack:
            node = stack.pop()
            if node in live:
                continue
            live.add(node)
            if self.is_and_node(node):
                stack.append(node_of(self._fanin0[node]))
                stack.append(node_of(self._fanin1[node]))
        return sorted(live)

    def num_live_ands(self) -> int:
        """Return the number of AND nodes reachable from the outputs."""
        return sum(1 for node in self.live_nodes() if self.is_and_node(node))

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def node_tables(self) -> Dict[int, TruthTable]:
        """Return the truth table of every node over the primary inputs."""
        num_inputs = self.num_inputs
        tables: Dict[int, TruthTable] = {0: TruthTable.constant(num_inputs, False)}
        for index, node in enumerate(self._input_nodes):
            tables[node] = TruthTable.variable(index, num_inputs)
        for node in range(1, self.num_nodes):
            if self._is_input[node]:
                continue
            f0 = self._literal_table(self._fanin0[node], tables)
            f1 = self._literal_table(self._fanin1[node], tables)
            tables[node] = f0 & f1
        return tables

    def _literal_table(self, literal: int, tables: Dict[int, TruthTable]) -> TruthTable:
        table = tables[node_of(literal)]
        return ~table if is_complemented(literal) else table

    def output_tables(self) -> List[TruthTable]:
        """Return the truth tables of the primary outputs."""
        tables = self.node_tables()
        return [self._literal_table(literal, tables) for literal in self._outputs]

    def to_bool_function(self, name: Optional[str] = None) -> BoolFunction:
        """Return the AIG's function as a :class:`BoolFunction`."""
        return BoolFunction(
            self.output_tables(),
            name=name or self.name,
            input_names=self._input_names,
            output_names=self._output_names,
        )

    def evaluate_words(self, words: Sequence[int]) -> List[int]:
        """Evaluate the AIG on a batch of input words (one packed pass).

        Delegates to the word-parallel engine in :mod:`repro.sim.engine`:
        every node carries a packed bitvector over the whole batch, so the
        cost is one pass over the nodes regardless of the batch size.
        """
        from ..sim.engine import AigSimulator

        return AigSimulator(self).simulate_words(words)

    def evaluate_word(self, word: int) -> int:
        """Evaluate the AIG on an input word (bit k = input k)."""
        values: Dict[int, int] = {0: 0}
        for index, node in enumerate(self._input_nodes):
            values[node] = (word >> index) & 1
        for node in range(1, self.num_nodes):
            if self._is_input[node]:
                continue
            a = self._literal_value(self._fanin0[node], values)
            b = self._literal_value(self._fanin1[node], values)
            values[node] = a & b
        result = 0
        for index, literal in enumerate(self._outputs):
            if self._literal_value(literal, values):
                result |= 1 << index
        return result

    @staticmethod
    def _literal_value(literal: int, values: Dict[int, int]) -> int:
        value = values[node_of(literal)]
        return value ^ 1 if is_complemented(literal) else value

    # ------------------------------------------------------------------ #
    # Compaction
    # ------------------------------------------------------------------ #
    def compact(self, name: Optional[str] = None) -> "Aig":
        """Return a copy containing only the logic reachable from the outputs."""
        result = Aig(name or self.name)
        mapping: Dict[int, int] = {0: FALSE_LIT}
        for index, node in enumerate(self._input_nodes):
            mapping[node] = result.add_input(self._input_names[index])
        live = set(self.live_nodes())
        for node in range(1, self.num_nodes):
            if self._is_input[node] or node not in live:
                continue
            f0 = self._map_literal(self._fanin0[node], mapping)
            f1 = self._map_literal(self._fanin1[node], mapping)
            mapping[node] = result.and_(f0, f1)
        for literal, name_ in zip(self._outputs, self._output_names):
            result.add_output(self._map_literal(literal, mapping), name_)
        return result

    @staticmethod
    def _map_literal(literal: int, mapping: Dict[int, int]) -> int:
        mapped = mapping[node_of(literal)]
        return negate(mapped) if is_complemented(literal) else mapped

    def __repr__(self) -> str:
        return (
            f"Aig(name={self.name!r}, inputs={self.num_inputs}, "
            f"outputs={self.num_outputs}, ands={self.num_ands})"
        )

"""Synthesis engine: optimisation scripts, technology mapping, area reports."""

from .area import AreaReport, area_in_ge, area_report
from .mapper import MappingError, map_to_cells
from .script import (
    SCHEDULER_ENV_VAR,
    SCHEDULER_NAMES,
    AdaptiveScheduler,
    FixedScheduler,
    PassScheduler,
    SynthesisEffort,
    SynthesisResult,
    optimize_aig,
    reset_synthesis_telemetry,
    resolve_scheduler,
    synthesis_telemetry,
    synthesize,
)

__all__ = [
    "SynthesisEffort",
    "SynthesisResult",
    "PassScheduler",
    "FixedScheduler",
    "AdaptiveScheduler",
    "SCHEDULER_ENV_VAR",
    "SCHEDULER_NAMES",
    "resolve_scheduler",
    "optimize_aig",
    "synthesize",
    "synthesis_telemetry",
    "reset_synthesis_telemetry",
    "map_to_cells",
    "MappingError",
    "AreaReport",
    "area_in_ge",
    "area_report",
]

"""Synthesis engine: optimisation scripts, technology mapping, area reports."""

from .area import AreaReport, area_in_ge, area_report
from .mapper import MappingError, map_to_cells
from .script import SynthesisEffort, SynthesisResult, optimize_aig, synthesize

__all__ = [
    "SynthesisEffort",
    "SynthesisResult",
    "optimize_aig",
    "synthesize",
    "map_to_cells",
    "MappingError",
    "AreaReport",
    "area_in_ge",
    "area_report",
]

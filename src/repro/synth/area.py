"""Area reporting utilities.

The paper reports every result in gate equivalents (GE): cell area divided by
the NAND2 area of the same library.  These helpers compute GE areas and
produce the small textual reports used by the CLI, the examples, and the
benchmark harnesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..netlist.library import CellLibrary
from ..netlist.netlist import Netlist

__all__ = ["AreaReport", "area_in_ge", "area_report"]


@dataclass
class AreaReport:
    """A per-cell-type breakdown of a netlist's area."""

    netlist_name: str
    total_ge: float
    cell_counts: Dict[str, int]
    cell_areas: Dict[str, float]

    def to_text(self) -> str:
        """Render the report as an aligned text table."""
        lines = [f"Area report for {self.netlist_name}"]
        lines.append(f"{'cell':<10}{'count':>8}{'area (GE)':>12}")
        for cell in sorted(self.cell_counts):
            lines.append(
                f"{cell:<10}{self.cell_counts[cell]:>8}{self.cell_areas[cell]:>12.2f}"
            )
        lines.append(f"{'total':<10}{sum(self.cell_counts.values()):>8}{self.total_ge:>12.2f}")
        return "\n".join(lines)


def area_in_ge(netlist: Netlist, library: Optional[CellLibrary] = None) -> float:
    """Return the netlist area normalised to the library's NAND2 cell.

    With the default library NAND2 has area 1.0, so this equals
    ``netlist.area()``; the normalisation matters when a caller supplies a
    library expressed in square microns.
    """
    library = library or netlist.library
    nand2 = library.get("NAND2")
    reference = nand2.area if nand2 is not None else 1.0
    if reference <= 0:
        raise ValueError("NAND2 reference area must be positive")
    return sum(library[instance.cell].area for instance in netlist.instances) / reference


def area_report(netlist: Netlist) -> AreaReport:
    """Build an :class:`AreaReport` for a netlist."""
    counts = netlist.cell_histogram()
    areas = {
        cell: count * netlist.library[cell].area for cell, count in counts.items()
    }
    return AreaReport(
        netlist_name=netlist.name,
        total_ge=area_in_ge(netlist),
        cell_counts=counts,
        cell_areas=areas,
    )

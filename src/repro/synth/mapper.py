"""Area-oriented technology mapping of an AIG onto the standard-cell library.

The mapper covers the AIG with the simple-gate families the paper's ABC
script uses (INV/BUF and 2- to 4-input NAND/NOR/AND/OR).  It works tree by
tree: multi-fanout nodes and primary outputs are tree roots; inside a tree a
dynamic programme chooses, for each required signal polarity, between an
AND/NAND cover of the node's AND-tree leaves, an OR/NOR cover of its OR-tree
leaves, or an inverter on the opposite polarity.

The result is a :class:`~repro.netlist.netlist.Netlist` whose
:meth:`~repro.netlist.netlist.Netlist.area` is the gate-equivalent area the
genetic algorithm uses as its fitness.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..netlist.library import CellLibrary, standard_cell_library
from ..netlist.netlist import CONST0_NET, CONST1_NET, Netlist
from ..aig.aig import Aig, is_complemented, negate, node_of

__all__ = ["map_to_cells", "MappingError"]

_MAX_SIMPLE_GATE_INPUTS = 4


class MappingError(Exception):
    """Raised when the AIG cannot be mapped onto the library."""


def map_to_cells(
    aig: Aig,
    library: Optional[CellLibrary] = None,
    name: Optional[str] = None,
) -> Netlist:
    """Map an AIG onto simple gates, returning a netlist."""
    library = library or standard_cell_library()
    _require_cells(library)
    mapper = _TreeMapper(aig, library, name or aig.name)
    return mapper.run()


def _require_cells(library: CellLibrary) -> None:
    required = ["INV", "BUF"]
    for width in range(2, _MAX_SIMPLE_GATE_INPUTS + 1):
        required += [f"NAND{width}", f"NOR{width}", f"AND{width}", f"OR{width}"]
    missing = [cell for cell in required if cell not in library]
    if missing:
        raise MappingError(f"library is missing required cells: {missing}")


class _TreeMapper:
    """Implements the tree-by-tree covering."""

    def __init__(self, aig: Aig, library: CellLibrary, name: str):
        self._aig = aig.compact()
        self._library = library
        self._netlist = Netlist(name, library)
        self._reference = self._aig.reference_counts()
        # Net carrying each (node, phase); phase True = non-complemented.
        self._nets: Dict[Tuple[int, bool], str] = {}
        # Memoised DP cost of producing (literal) inside the current tree.
        self._cost_cache: Dict[int, float] = {}
        self._roots: List[int] = []

    # -------------------------------------------------------------- #
    # Public entry point
    # -------------------------------------------------------------- #
    def run(self) -> Netlist:
        aig = self._aig
        for index in range(aig.num_inputs):
            net = aig.input_names[index]
            self._netlist.add_input(net)
            self._nets[(node_of(aig.input_literal(index)), True)] = net

        self._roots = self._find_roots()
        for root in self._roots:
            if aig.is_and_node(root):
                self._emit_root(root)

        self._connect_outputs()
        return self._netlist

    # -------------------------------------------------------------- #
    # Tree decomposition
    # -------------------------------------------------------------- #
    def _find_roots(self) -> List[int]:
        """Multi-fanout AND nodes and output nodes, in topological order."""
        aig = self._aig
        output_nodes = {node_of(lit) for lit in aig.outputs}
        roots = []
        for node in aig.and_nodes():
            if self._reference.get(node, 0) > 1 or node in output_nodes:
                roots.append(node)
        return roots

    def _is_tree_internal(self, node: int, root: int) -> bool:
        """True if ``node`` belongs to the tree hanging below ``root``."""
        if node == root:
            return True
        return (
            self._aig.is_and_node(node)
            and self._reference.get(node, 0) <= 1
        )

    # -------------------------------------------------------------- #
    # DP cost model
    # -------------------------------------------------------------- #
    def _collect_and_leaves(self, literal: int, root: int, limit: int) -> List[int]:
        """Flatten the AND tree under a non-complemented literal (up to ``limit``)."""
        leaves = [literal]
        while len(leaves) < limit:
            expanded = False
            for index, leaf in enumerate(leaves):
                node = node_of(leaf)
                if is_complemented(leaf) or not self._aig.is_and_node(node):
                    continue
                if node != root and not self._is_tree_internal(node, root):
                    continue
                if node == root and leaf != Aig.lit(root):
                    continue
                fanin0, fanin1 = self._aig.fanins(node)
                if len(leaves) + 1 > limit:
                    continue
                leaves = leaves[:index] + [fanin0, fanin1] + leaves[index + 1:]
                expanded = True
                break
            if not expanded:
                break
        return leaves

    def _collect_or_leaves(self, literal: int, root: int, limit: int) -> List[int]:
        """Flatten the OR tree: ``literal`` must be seen as an OR of the result."""
        leaves = [literal]
        while len(leaves) < limit:
            expanded = False
            for index, leaf in enumerate(leaves):
                node = node_of(leaf)
                if not is_complemented(leaf) or not self._aig.is_and_node(node):
                    continue
                if not self._is_tree_internal(node, root) and node != root:
                    continue
                fanin0, fanin1 = self._aig.fanins(node)
                leaves = (
                    leaves[:index]
                    + [negate(fanin0), negate(fanin1)]
                    + leaves[index + 1:]
                )
                expanded = True
                break
            if not expanded:
                break
        return leaves

    def _leaf_cost(self, literal: int, root: int) -> float:
        """Cost of obtaining the signal of ``literal`` (recursive DP)."""
        node = node_of(literal)
        aig = self._aig
        if not aig.is_and_node(node) or (node != root and not self._is_tree_internal(node, root)):
            # Tree input: the positive phase already exists (PI or other root).
            return 0.0 if not is_complemented(literal) else self._library["INV"].area
        return self._signal_cost(literal, root)

    def _signal_cost(self, literal: int, root: int) -> float:
        cached = self._cost_cache.get(literal)
        if cached is not None:
            return cached
        # Temporarily seed with infinity to break pathological cycles (none
        # should exist in a DAG, but the guard keeps recursion safe).
        self._cost_cache[literal] = float("inf")
        structural = self._structural_cost(literal, root)
        opposite = self._structural_cost(negate(literal), root)
        cost = min(structural, opposite + self._library["INV"].area)
        self._cost_cache[literal] = cost
        self._cost_cache.setdefault(negate(literal), min(opposite, structural + self._library["INV"].area))
        return cost

    def _structural_cost(self, literal: int, root: int) -> float:
        """Cost of the best direct gate cover for ``literal`` (no leading INV)."""
        node = node_of(literal)
        aig = self._aig
        if not aig.is_and_node(node) or (node != root and not self._is_tree_internal(node, root)):
            return 0.0 if not is_complemented(literal) else self._library["INV"].area
        best = float("inf")
        if not is_complemented(literal):
            for width in range(2, _MAX_SIMPLE_GATE_INPUTS + 1):
                leaves = self._collect_and_leaves(literal, root, width)
                if len(leaves) < 2 or len(leaves) > width:
                    continue
                cost = self._library[f"AND{len(leaves)}"].area + sum(
                    self._leaf_cost(leaf, root) for leaf in leaves
                )
                best = min(best, cost)
                nor_leaves = self._collect_or_leaves(negate(literal), root, width)
                if 2 <= len(nor_leaves) <= width:
                    cost = self._library[f"NOR{len(nor_leaves)}"].area + sum(
                        self._leaf_cost(leaf, root) for leaf in nor_leaves
                    )
                    best = min(best, cost)
        else:
            for width in range(2, _MAX_SIMPLE_GATE_INPUTS + 1):
                leaves = self._collect_and_leaves(negate(literal), root, width)
                if 2 <= len(leaves) <= width:
                    cost = self._library[f"NAND{len(leaves)}"].area + sum(
                        self._leaf_cost(leaf, root) for leaf in leaves
                    )
                    best = min(best, cost)
                or_leaves = self._collect_or_leaves(literal, root, width)
                if 2 <= len(or_leaves) <= width:
                    cost = self._library[f"OR{len(or_leaves)}"].area + sum(
                        self._leaf_cost(leaf, root) for leaf in or_leaves
                    )
                    best = min(best, cost)
        return best

    # -------------------------------------------------------------- #
    # Netlist emission
    # -------------------------------------------------------------- #
    def _emit_root(self, root: int) -> None:
        self._cost_cache = {}
        self._emit_literal(Aig.lit(root), root)

    def _emit_literal(self, literal: int, root: int) -> str:
        """Emit cells to produce the signal of ``literal``; return its net."""
        node = node_of(literal)
        aig = self._aig
        phase = not is_complemented(literal)
        existing = self._nets.get((node, phase))
        if existing is not None:
            return existing

        if not aig.is_and_node(node) or (node != root and not self._is_tree_internal(node, root)):
            # Tree input: positive net must exist already (PIs seeded, other
            # roots emitted earlier in topological order).
            positive = self._nets.get((node, True))
            if positive is None:
                if node == 0:
                    positive = CONST0_NET
                    self._nets[(0, True)] = CONST0_NET
                    self._nets[(0, False)] = CONST1_NET
                else:
                    raise MappingError(f"tree input node {node} has no mapped net")
            if phase:
                return positive
            net = self._netlist.add_instance("INV", [positive]).output
            self._nets[(node, False)] = net
            return net

        structural = self._structural_cost(literal, root)
        opposite = self._structural_cost(negate(literal), root)
        if structural <= opposite + self._library["INV"].area:
            net = self._emit_structural(literal, root)
        else:
            source = self._emit_literal(negate(literal), root)
            net = self._netlist.add_instance("INV", [source]).output
        self._nets[(node, phase)] = net
        return net

    def _emit_structural(self, literal: int, root: int) -> str:
        """Emit the best direct gate cover chosen by :meth:`_structural_cost`."""
        node = node_of(literal)
        best_cost = float("inf")
        best_cell = ""
        best_leaves: List[int] = []
        positive = not is_complemented(literal)
        for width in range(2, _MAX_SIMPLE_GATE_INPUTS + 1):
            if positive:
                and_leaves = self._collect_and_leaves(literal, root, width)
                if 2 <= len(and_leaves) <= width:
                    cost = self._library[f"AND{len(and_leaves)}"].area + sum(
                        self._leaf_cost(leaf, root) for leaf in and_leaves
                    )
                    if cost < best_cost:
                        best_cost, best_cell, best_leaves = cost, f"AND{len(and_leaves)}", and_leaves
                nor_leaves = self._collect_or_leaves(negate(literal), root, width)
                if 2 <= len(nor_leaves) <= width:
                    cost = self._library[f"NOR{len(nor_leaves)}"].area + sum(
                        self._leaf_cost(leaf, root) for leaf in nor_leaves
                    )
                    if cost < best_cost:
                        best_cost, best_cell, best_leaves = cost, f"NOR{len(nor_leaves)}", nor_leaves
            else:
                nand_leaves = self._collect_and_leaves(negate(literal), root, width)
                if 2 <= len(nand_leaves) <= width:
                    cost = self._library[f"NAND{len(nand_leaves)}"].area + sum(
                        self._leaf_cost(leaf, root) for leaf in nand_leaves
                    )
                    if cost < best_cost:
                        best_cost, best_cell, best_leaves = cost, f"NAND{len(nand_leaves)}", nand_leaves
                or_leaves = self._collect_or_leaves(literal, root, width)
                if 2 <= len(or_leaves) <= width:
                    cost = self._library[f"OR{len(or_leaves)}"].area + sum(
                        self._leaf_cost(leaf, root) for leaf in or_leaves
                    )
                    if cost < best_cost:
                        best_cost, best_cell, best_leaves = cost, f"OR{len(or_leaves)}", or_leaves
        if not best_cell:
            raise MappingError(f"no gate cover found for literal {literal}")
        input_nets = [self._emit_literal(leaf, root) for leaf in best_leaves]
        return self._netlist.add_instance(best_cell, input_nets).output

    def _connect_outputs(self) -> None:
        aig = self._aig
        used_names: Dict[str, int] = {}
        for literal, requested in zip(aig.outputs, aig.output_names):
            name = self._unique_output_name(requested, used_names)
            net = self._output_source_net(literal)
            can_rename = (
                net != name
                and name not in self._netlist.nets()
                and net not in self._netlist.primary_inputs
                and net not in self._netlist.primary_outputs
                and net not in (CONST0_NET, CONST1_NET)
                and self._netlist.driver_of(net) is not None
            )
            if net == name:
                self._netlist.add_output(name)
            elif can_rename:
                self._netlist.rename_net(net, name)
                self._rename_cached_net(net, name)
                self._netlist.add_output(name)
            else:
                self._netlist.add_output(name)
                self._netlist.add_instance("BUF", [net], output=name)

    def _output_source_net(self, literal: int) -> str:
        node = node_of(literal)
        aig = self._aig
        if node == 0:
            return CONST1_NET if is_complemented(literal) else CONST0_NET
        if aig.is_and_node(node):
            net = self._nets.get((node, not is_complemented(literal)))
            if net is None:
                # The root was emitted in positive phase; add an inverter.
                positive = self._nets[(node, True)]
                net = self._netlist.add_instance("INV", [positive]).output
                self._nets[(node, False)] = net
            return net
        # Primary input.
        positive = self._nets[(node, True)]
        if not is_complemented(literal):
            return positive
        cached = self._nets.get((node, False))
        if cached is not None:
            return cached
        net = self._netlist.add_instance("INV", [positive]).output
        self._nets[(node, False)] = net
        return net

    def _unique_output_name(self, requested: str, used: Dict[str, int]) -> str:
        """Pick an output name that collides with no existing net or output."""
        existing = set(self._netlist.nets()) | set(self._netlist.primary_outputs)
        name = requested
        while name in existing:
            used[requested] = used.get(requested, 0) + 1
            name = f"{requested}_{used[requested]}"
        return name

    def _rename_cached_net(self, old: str, new: str) -> None:
        for key, net in list(self._nets.items()):
            if net == old:
                self._nets[key] = new

"""Synthesis scripts: sequences of AIG optimisation passes plus mapping.

The paper drives ABC with a custom script "comprising multiple refactor,
rewrite and balance commands".  :func:`optimize_aig` is our equivalent: it
applies a configurable sequence of the passes from :mod:`repro.aig.opt`,
iterating while the AND count keeps improving.  :func:`synthesize` goes all
the way from a multi-output function to a mapped netlist and is the fitness
kernel used by the pin-assignment search of Phase II.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..aig.aig import Aig
from ..aig.build import aig_from_function
from ..aig.opt import balance, refactor, rewrite
from ..logic.boolfunc import BoolFunction
from ..netlist.library import CellLibrary, standard_cell_library
from ..netlist.netlist import Netlist
from .mapper import map_to_cells

__all__ = ["SynthesisEffort", "SynthesisResult", "optimize_aig", "synthesize"]

#: Named pass sequences, in increasing effort/runtime order.
_PASS_SEQUENCES: Dict[str, List[str]] = {
    # A single cheap cleanup: useful for tests and for very large sweeps.
    "fast": ["balance", "rewrite"],
    # The default: roughly ABC's resyn.
    "standard": ["balance", "rewrite", "refactor", "balance", "rewrite"],
    # Roughly resyn2 run twice, for final (post-GA) synthesis runs.
    "high": [
        "balance", "rewrite", "refactor", "balance", "rewrite",
        "rewrite-z", "balance", "refactor-z", "rewrite-z", "balance",
    ],
}


class SynthesisEffort:
    """Symbolic names for the supported effort levels."""

    FAST = "fast"
    STANDARD = "standard"
    HIGH = "high"

    @staticmethod
    def passes(effort: str) -> List[str]:
        """Return the pass names for an effort level."""
        try:
            return list(_PASS_SEQUENCES[effort])
        except KeyError as exc:
            raise ValueError(
                f"unknown synthesis effort {effort!r}; expected one of "
                f"{sorted(_PASS_SEQUENCES)}"
            ) from exc


@dataclass
class SynthesisResult:
    """Everything produced by a synthesis run."""

    aig: Aig
    netlist: Netlist
    area: float
    and_count: int
    pass_trace: List[Tuple[str, int]] = field(default_factory=list)

    def __repr__(self) -> str:
        return (
            f"SynthesisResult(area={self.area:.2f} GE, ands={self.and_count}, "
            f"gates={self.netlist.num_instances()})"
        )


def _apply_pass(aig: Aig, pass_name: str) -> Aig:
    if pass_name == "balance":
        return balance(aig)
    if pass_name == "rewrite":
        return rewrite(aig)
    if pass_name == "rewrite-z":
        return rewrite(aig, zero_gain=True)
    if pass_name == "refactor":
        return refactor(aig)
    if pass_name == "refactor-z":
        return refactor(aig, zero_gain=True)
    raise ValueError(f"unknown synthesis pass {pass_name!r}")


def _aig_structure_key(aig: Aig) -> Tuple:
    """A hashable key identifying the structure of a compacted AIG.

    Two AIGs with the same key have identical inputs, AND fanins and output
    literals, so every (deterministic, structure-driven) optimisation pass
    provably produces the same result on both.
    """
    return (
        aig.num_inputs,
        tuple(aig.fanins(node) for node in aig.and_nodes()),
        tuple(aig.outputs),
    )


def optimize_aig(
    aig: Aig,
    effort: str = SynthesisEffort.STANDARD,
    max_rounds: int = 2,
    trace: Optional[List[Tuple[str, int]]] = None,
) -> Aig:
    """Optimise an AIG with the pass sequence of the given effort level.

    The sequence is repeated up to ``max_rounds`` times, stopping early when a
    full round makes no further progress.  The best AIG seen (by AND count) is
    returned.

    Per-pass fixed-point detection: every pass is a deterministic function of
    the AIG structure, so when a pass is about to run on the exact structure
    it already saw, the previous result is reused instead of re-running the
    pass.  In particular a pass known to leave a structure unchanged is
    skipped outright on that structure — the common case in the later rounds
    of a converged script.  The returned AIG (and the recorded trace) are
    identical to what the unmemoised loop would produce.
    """
    passes = SynthesisEffort.passes(effort)
    best = aig.compact()
    if trace is not None:
        trace.append(("strash", best.num_ands))
    current = best
    current_key = _aig_structure_key(current)
    # pass name -> (input structure key, output AIG, output structure key)
    last_run: Dict[str, Tuple[Tuple, Aig, Tuple]] = {}
    for _ in range(max_rounds):
        round_start = best.num_ands
        for pass_name in passes:
            memo = last_run.get(pass_name)
            if memo is not None and memo[0] == current_key:
                current, current_key = memo[1], memo[2]
            else:
                current = _apply_pass(current, pass_name)
                produced_key = _aig_structure_key(current)
                last_run[pass_name] = (current_key, current, produced_key)
                current_key = produced_key
            if trace is not None:
                trace.append((pass_name, current.num_ands))
            if current.num_ands < best.num_ands:
                best = current
        if best.num_ands >= round_start:
            break
    return best


def synthesize(
    function: BoolFunction,
    library: Optional[CellLibrary] = None,
    effort: str = SynthesisEffort.STANDARD,
    max_rounds: int = 2,
    name: Optional[str] = None,
) -> SynthesisResult:
    """Synthesise a multi-output function into a mapped standard-cell netlist."""
    library = library or standard_cell_library()
    trace: List[Tuple[str, int]] = []
    initial = aig_from_function(function, name=name)
    optimized = optimize_aig(initial, effort=effort, max_rounds=max_rounds, trace=trace)
    netlist = map_to_cells(optimized, library, name=name or function.name)
    return SynthesisResult(
        aig=optimized,
        netlist=netlist,
        area=netlist.area(),
        and_count=optimized.num_ands,
        pass_trace=trace,
    )

"""Synthesis scripts: scheduled AIG optimisation passes plus mapping.

The paper drives ABC with a custom script "comprising multiple refactor,
rewrite and balance commands".  :func:`optimize_aig` is our equivalent.  The
*which pass runs next* decision is delegated to a :class:`PassScheduler`
strategy:

* :class:`FixedScheduler` replays the named effort-level sequences
  (``fast``/``standard``/``high``) exactly as the pre-strategy code did —
  byte-identical trace and output, pinned by regression tests.
* :class:`AdaptiveScheduler` picks the next pass greedily from measured
  per-pass AND-count gain history — bandit-style credit per pass name,
  persisted across calls and processes via the ``REPRO_CACHE_DIR`` pattern
  shared with the synthesis disk cache.

:func:`synthesize` goes all the way from a multi-output function to a mapped
netlist and is the fitness kernel used by the pin-assignment search of
Phase II.  Every run feeds the module-level synthesis telemetry
(:func:`synthesis_telemetry`), the measurement layer the adaptive policies
read from.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Union

from ..aig.aig import Aig
from ..aig.build import aig_from_function
from ..aig.opt import apply_pass, known_passes
from ..logic.boolfunc import BoolFunction
from ..netlist.library import CellLibrary, standard_cell_library
from ..netlist.netlist import Netlist
from ..obs import metrics as obs_metrics
from ..telemetry import RunTelemetry
from .mapper import map_to_cells

__all__ = [
    "SynthesisEffort",
    "SynthesisResult",
    "PassScheduler",
    "FixedScheduler",
    "AdaptiveScheduler",
    "SCHEDULER_ENV_VAR",
    "SCHEDULER_NAMES",
    "resolve_scheduler",
    "optimize_aig",
    "synthesize",
    "synthesis_telemetry",
    "reset_synthesis_telemetry",
]

#: Named pass sequences, in increasing effort/runtime order.
_PASS_SEQUENCES: Dict[str, List[str]] = {
    # A single cheap cleanup: useful for tests and for very large sweeps.
    "fast": ["balance", "rewrite"],
    # The default: roughly ABC's resyn.
    "standard": ["balance", "rewrite", "refactor", "balance", "rewrite"],
    # Roughly resyn2 run twice, for final (post-GA) synthesis runs.
    "high": [
        "balance", "rewrite", "refactor", "balance", "rewrite",
        "rewrite-z", "balance", "refactor-z", "rewrite-z", "balance",
    ],
}

#: Environment variable selecting the default scheduler by name.
SCHEDULER_ENV_VAR = "REPRO_SCHEDULER"

#: Scheduler names accepted by :func:`resolve_scheduler` and ``--scheduler``.
SCHEDULER_NAMES = ("fixed", "adaptive")


class SynthesisEffort:
    """Symbolic names for the supported effort levels."""

    FAST = "fast"
    STANDARD = "standard"
    HIGH = "high"

    @staticmethod
    def passes(effort: str) -> List[str]:
        """Return the pass names for an effort level."""
        try:
            return list(_PASS_SEQUENCES[effort])
        except KeyError as exc:
            raise ValueError(
                f"unknown synthesis effort {effort!r}; expected one of "
                f"{sorted(_PASS_SEQUENCES)}"
            ) from exc


# ---------------------------------------------------------------------------
# Module-level synthesis telemetry
# ---------------------------------------------------------------------------

_TELEMETRY = RunTelemetry(label="synth")


def synthesis_telemetry() -> RunTelemetry:
    """The live, process-wide synthesis telemetry record.

    Counters live in the ``synth`` scope: ``runs``, ``passes_scheduled``
    (every pass slot the scheduler emitted, including memo-reused ones),
    ``passes_executed`` (actual pass applications) and per-pass cumulative
    AND-count gains under ``gain.<pass>``.
    """
    return _TELEMETRY


def reset_synthesis_telemetry() -> RunTelemetry:
    """Reset and return the module telemetry (tests and benchmark legs)."""
    _TELEMETRY.scopes.clear()
    return _TELEMETRY


@dataclass
class SynthesisResult:
    """Everything produced by a synthesis run."""

    aig: Aig
    netlist: Netlist
    area: float
    and_count: int
    pass_trace: List[Tuple[str, int]] = field(default_factory=list)
    telemetry: Optional[RunTelemetry] = None

    @property
    def pass_gains(self) -> List[Tuple[str, int]]:
        """Per-pass AND-count gains recovered from the trace.

        Entry ``(name, gain)`` means pass ``name`` removed ``gain`` AND nodes
        (negative: it grew the AIG, as zero-gain passes may).  The leading
        ``strash`` trace entry provides the baseline and is not reported.
        """
        gains: List[Tuple[str, int]] = []
        previous: Optional[int] = None
        for name, count in self.pass_trace:
            if previous is not None and name != "strash":
                gains.append((name, previous - count))
            previous = count
        return gains

    def __repr__(self) -> str:
        return (
            f"SynthesisResult(area={self.area:.2f} GE, ands={self.and_count}, "
            f"gates={self.netlist.num_instances()})"
        )


def _apply_pass(aig: Aig, pass_name: str) -> Aig:
    return apply_pass(aig, pass_name)


def _aig_structure_key(aig: Aig) -> Tuple:
    """A hashable key identifying the structure of a compacted AIG.

    Two AIGs with the same key have identical inputs, AND fanins and output
    literals, so every (deterministic, structure-driven) optimisation pass
    provably produces the same result on both.
    """
    return (
        aig.num_inputs,
        tuple(aig.fanins(node) for node in aig.and_nodes()),
        tuple(aig.outputs),
    )


# ---------------------------------------------------------------------------
# Scheduler strategies
# ---------------------------------------------------------------------------


class PassScheduler(ABC):
    """Strategy deciding which optimisation pass runs next.

    ``optimize`` owns the whole pass loop: it receives the input AIG and
    returns the best AIG found, appending ``(pass name, AND count)`` entries
    to ``trace`` exactly as the historic ``optimize_aig`` loop did.
    """

    #: Registry name; also the value accepted by ``--scheduler``.
    name: str = ""

    @abstractmethod
    def optimize(
        self, aig: Aig, trace: Optional[List[Tuple[str, int]]] = None
    ) -> Aig:
        """Run the pass loop on ``aig`` and return the best AIG seen."""


class FixedScheduler(PassScheduler):
    """The historic fixed-sequence loop, byte-identical to pre-strategy code.

    The effort-level sequence is repeated up to ``max_rounds`` times, stopping
    early when a full round makes no further progress.  The best AIG seen (by
    AND count) is returned.

    Per-pass fixed-point detection: every pass is a deterministic function of
    the AIG structure, so when a pass is about to run on the exact structure
    it already saw, the previous result is reused instead of re-running the
    pass.  In particular a pass known to leave a structure unchanged is
    skipped outright on that structure — the common case in the later rounds
    of a converged script.  The returned AIG (and the recorded trace) are
    identical to what the unmemoised loop would produce.
    """

    name = "fixed"

    def __init__(self, effort: str = "standard", max_rounds: int = 2) -> None:
        self.effort = effort
        self.passes = SynthesisEffort.passes(effort)
        self.max_rounds = max_rounds

    def optimize(
        self, aig: Aig, trace: Optional[List[Tuple[str, int]]] = None
    ) -> Aig:
        passes = self.passes
        best = aig.compact()
        if trace is not None:
            trace.append(("strash", best.num_ands))
        current = best
        current_key = _aig_structure_key(current)
        # pass name -> (input structure key, output AIG, output structure key)
        last_run: Dict[str, Tuple[Tuple, Aig, Tuple]] = {}
        _TELEMETRY.count("synth", "runs")
        for _ in range(self.max_rounds):
            round_start = best.num_ands
            for pass_name in passes:
                before = current.num_ands
                memo = last_run.get(pass_name)
                if memo is not None and memo[0] == current_key:
                    current, current_key = memo[1], memo[2]
                else:
                    current = _apply_pass(current, pass_name)
                    produced_key = _aig_structure_key(current)
                    last_run[pass_name] = (current_key, current, produced_key)
                    current_key = produced_key
                    _TELEMETRY.count("synth", "passes_executed")
                _TELEMETRY.count("synth", "passes_scheduled")
                _TELEMETRY.count("synth", f"gain.{pass_name}", before - current.num_ands)
                if trace is not None:
                    trace.append((pass_name, current.num_ands))
                if current.num_ands < best.num_ands:
                    best = current
            if best.num_ands >= round_start:
                break
        return best


class _PassCreditStore:
    """Persisted per-pass gain credit (the adaptive scheduler's memory).

    Keeps, per pass name, the number of applications and the cumulative
    *relative* AND-count gain (gain divided by pre-pass AND count, clamped at
    zero), so the mean credit is comparable across circuits of different
    sizes.  When a cache directory is configured (``REPRO_CACHE_DIR``), the
    credit survives across processes in ``pass_credit.json``; IO failures are
    silently tolerated — credit is an optimisation, never a correctness
    input.
    """

    FILENAME = "pass_credit.json"

    _shared: Dict[str, "_PassCreditStore"] = {}

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path
        self.credit: Dict[str, Dict[str, float]] = {}
        if path is not None:
            self._load()

    @classmethod
    def shared(cls, directory: Optional[str]) -> "_PassCreditStore":
        """One store per cache directory ('' keys the in-memory store)."""
        key = directory or ""
        store = cls._shared.get(key)
        if store is None:
            path = os.path.join(directory, cls.FILENAME) if directory else None
            store = cls(path)
            cls._shared[key] = store
        return store

    @classmethod
    def from_environment(cls) -> "_PassCreditStore":
        from ..ga.pinopt import CACHE_DIR_ENV_VAR

        return cls.shared(os.environ.get(CACHE_DIR_ENV_VAR) or None)

    def _load(self) -> None:
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                raw = json.load(handle)
        except (OSError, ValueError):
            return
        if not isinstance(raw, dict):
            return
        for name, entry in raw.items():
            if (
                isinstance(entry, dict)
                and isinstance(entry.get("calls"), (int, float))
                and isinstance(entry.get("gain"), (int, float))
            ):
                self.credit[str(name)] = {
                    "calls": float(entry["calls"]),
                    "gain": float(entry["gain"]),
                }

    def save(self) -> None:
        if self.path is None:
            return
        try:
            directory = os.path.dirname(self.path)
            os.makedirs(directory, exist_ok=True)
            fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(self.credit, handle, sort_keys=True)
            os.replace(temp_path, self.path)
        except OSError:
            pass

    def update(self, pass_name: str, gain: int, before: int) -> None:
        entry = self.credit.setdefault(pass_name, {"calls": 0.0, "gain": 0.0})
        entry["calls"] += 1
        entry["gain"] += max(gain, 0) / max(before, 1)

    def mean(self, pass_name: str) -> Optional[float]:
        entry = self.credit.get(pass_name)
        if not entry or entry["calls"] <= 0:
            return None
        return entry["gain"] / entry["calls"]


class AdaptiveScheduler(PassScheduler):
    """Credit-greedy pass scheduling from measured gain history.

    Arms are the registered pass names.  Selection is deterministic: untried
    arms first (optimistic initialisation, in registry order), then the arm
    with the highest mean relative gain (ties broken by registry order).  An
    arm observed to yield no gain on the current structure is retired *for
    that structure*.  The run ends when every arm is retired on the current
    structure, when ``stall_limit`` consecutive passes fail to improve the
    best AND count (the credit ordering front-loads the profitable passes,
    so a short stall means the gains have dried up), or when the hard pass
    budget is exhausted — so termination is guaranteed.
    """

    name = "adaptive"

    def __init__(
        self,
        max_passes: Optional[int] = None,
        credit: Optional[_PassCreditStore] = None,
        stall_limit: int = 2,
    ) -> None:
        self.arms = known_passes()
        # Budget comparable to the historic worst case: two rounds of "high".
        self.max_passes = max_passes if max_passes is not None else 2 * len(
            SynthesisEffort.passes(SynthesisEffort.HIGH)
        )
        self.stall_limit = stall_limit
        self._credit = credit if credit is not None else _PassCreditStore.from_environment()

    def _pick(self, candidates: List[str]) -> str:
        untried = [name for name in candidates if self._credit.mean(name) is None]
        if untried:
            return untried[0]
        return max(candidates, key=lambda name: (self._credit.mean(name), -candidates.index(name)))

    def optimize(
        self, aig: Aig, trace: Optional[List[Tuple[str, int]]] = None
    ) -> Aig:
        best = aig.compact()
        if trace is not None:
            trace.append(("strash", best.num_ands))
        current = best
        current_key = _aig_structure_key(current)
        retired: Dict[str, Set[Tuple]] = {name: set() for name in self.arms}
        _TELEMETRY.count("synth", "runs")
        passes_run = 0
        stalled = 0
        while passes_run < self.max_passes and stalled < self.stall_limit:
            candidates = [
                name for name in self.arms if current_key not in retired[name]
            ]
            if not candidates:
                break
            pass_name = self._pick(candidates)
            before = current.num_ands
            produced = _apply_pass(current, pass_name)
            produced_key = _aig_structure_key(produced)
            passes_run += 1
            gain = before - produced.num_ands
            self._credit.update(pass_name, gain, before)
            _TELEMETRY.count("synth", "passes_scheduled")
            _TELEMETRY.count("synth", "passes_executed")
            _TELEMETRY.count("synth", f"gain.{pass_name}", gain)
            if trace is not None:
                trace.append((pass_name, produced.num_ands))
            if gain <= 0:
                # No improvement on this structure: retire the arm for it.
                # Zero-gain restructuring passes may still move the search to
                # a new structure, which un-retires everything there.
                retired[pass_name].add(current_key)
            if produced_key != current_key:
                current, current_key = produced, produced_key
            if current.num_ands < best.num_ands:
                best = current
                stalled = 0
            else:
                stalled += 1
        self._credit.save()
        return best


def resolve_scheduler(
    scheduler: Union[None, str, PassScheduler] = None,
    effort: str = SynthesisEffort.STANDARD,
    max_rounds: int = 2,
) -> PassScheduler:
    """Resolve a scheduler argument to a strategy instance.

    ``scheduler`` may be a :class:`PassScheduler` (returned as-is), a name
    from :data:`SCHEDULER_NAMES`, or ``None`` — in which case the
    ``REPRO_SCHEDULER`` environment variable is consulted and ``fixed`` is
    the fallback.  Schedulers are plumbed through worker-pool boundaries by
    name, so everything reachable from a campaign spec stays picklable.
    """
    if isinstance(scheduler, PassScheduler):
        return scheduler
    name = scheduler or os.environ.get(SCHEDULER_ENV_VAR) or "fixed"
    if name == "fixed":
        return FixedScheduler(effort=effort, max_rounds=max_rounds)
    if name == "adaptive":
        return AdaptiveScheduler()
    raise ValueError(
        f"unknown scheduler {name!r}; expected one of {sorted(SCHEDULER_NAMES)}"
    )


def optimize_aig(
    aig: Aig,
    effort: str = SynthesisEffort.STANDARD,
    max_rounds: int = 2,
    trace: Optional[List[Tuple[str, int]]] = None,
    scheduler: Union[None, str, PassScheduler] = None,
) -> Aig:
    """Optimise an AIG under the given scheduling strategy.

    With the default ``fixed`` scheduler this reproduces the historic
    behaviour byte-for-byte: the effort-level pass sequence repeated up to
    ``max_rounds`` times with early stopping and per-pass fixed-point
    memoisation.  Pass ``scheduler="adaptive"`` (or set ``REPRO_SCHEDULER``)
    to let measured gain history drive pass selection instead.
    """
    return resolve_scheduler(scheduler, effort, max_rounds).optimize(aig, trace=trace)


def synthesize(
    function: BoolFunction,
    library: Optional[CellLibrary] = None,
    effort: str = SynthesisEffort.STANDARD,
    max_rounds: int = 2,
    name: Optional[str] = None,
    scheduler: Union[None, str, PassScheduler] = None,
) -> SynthesisResult:
    """Synthesise a multi-output function into a mapped standard-cell netlist."""
    library = library or standard_cell_library()
    began = time.monotonic()
    trace: List[Tuple[str, int]] = []
    initial = aig_from_function(function, name=name)
    optimized = optimize_aig(
        initial, effort=effort, max_rounds=max_rounds, trace=trace,
        scheduler=scheduler,
    )
    netlist = map_to_cells(optimized, library, name=name or function.name)
    obs_metrics.counter("repro_synth_runs_total", effort=str(effort))
    obs_metrics.observe("repro_synth_seconds", time.monotonic() - began)
    telemetry = RunTelemetry(label="synthesize")
    telemetry.record("synth", "passes_scheduled", max(len(trace) - 1, 0))
    telemetry.record("synth", "and_initial", initial.num_ands)
    telemetry.record("synth", "and_final", optimized.num_ands)
    return SynthesisResult(
        aig=optimized,
        netlist=netlist,
        area=netlist.area(),
        and_count=optimized.num_ands,
        pass_trace=trace,
        telemetry=telemetry,
    )

"""Optional compiled cores (CDCL inner loop, packed lane evaluation).

The extension module :mod:`repro._native._core` is built by ``setup.py``
(``python setup.py build_ext --inplace`` or ``pip install -e .``) and is
entirely optional: when the import fails the pure-Python implementations
remain the reference backend and :data:`IMPORT_ERROR` records why, so
``repro doctor`` can explain the fallback.
"""

from __future__ import annotations

from typing import Any, Optional

core: Optional[Any]
IMPORT_ERROR: Optional[str]

try:  # pragma: no cover - exercised only when the extension is built
    import importlib

    core = importlib.import_module("repro._native._core")
    IMPORT_ERROR = None
except ImportError as exc:  # pragma: no cover - depends on build state
    core = None
    IMPORT_ERROR = str(exc)

__all__ = ["core", "IMPORT_ERROR"]

/* Compiled twin of the pure-Python hot cores.
 *
 * Two things live here, both dispatched to by ``repro.backend`` when this
 * module imports cleanly:
 *
 * 1. ``SolverCore`` — the CDCL inner core (watched-literal unit propagation,
 *    1-UIP conflict analysis with clause learning, the VSIDS order-heap,
 *    geometric/Luby restarts, learned-clause reduction, solve budgets, and
 *    LBD clause forgetting).  Every algorithmic step mirrors
 *    ``repro/sat/solver.py`` exactly — the same watcher-list append and
 *    swap-remove order, the same lazy heap with IEEE-double activity keys,
 *    the same literal orders in learned clauses — so decisions, conflicts,
 *    propagation counts, models, and UNSAT verdicts are identical to the
 *    pure backend on every input.  The differential harness in
 *    ``tests/native/`` enforces this.
 *
 * 2. ``run_netlist`` / ``run_aig`` — packed lane evaluation over fixed-width
 *    uint64 word arrays, replacing the per-net Python-bigint operations of
 *    ``repro/sim/engine.py`` on the hot path.  Results are bit-identical by
 *    construction (the same OR-of-minterms expansion over the same bits).
 *
 * The module is optional: the build is declared ``optional=True`` in
 * setup.py and the pure implementations remain the always-available
 * reference.
 */
#define PY_SSIZE_T_CLEAN
#include <Python.h>

#include <stdint.h>
#include <stdlib.h>
#include <string.h>
#include <time.h>

/* ------------------------------------------------------------------ */
/* Growable int vector (watcher lists)                                 */
/* ------------------------------------------------------------------ */
typedef struct {
    int *data;
    int len;
    int cap;
} IntVec;

static int iv_push(IntVec *v, int value)
{
    if (v->len == v->cap) {
        int cap = v->cap ? v->cap * 2 : 4;
        int *data = (int *)realloc(v->data, (size_t)cap * sizeof(int));
        if (data == NULL)
            return -1;
        v->data = data;
        v->cap = cap;
    }
    v->data[v->len++] = value;
    return 0;
}

/* ------------------------------------------------------------------ */
/* Clauses                                                             */
/* ------------------------------------------------------------------ */
typedef struct {
    int *lits;
    int size;
    int lbd;
    uint8_t learned;
} NClause;

/* ------------------------------------------------------------------ */
/* Order heap: entries (key=-activity, var), min-heap under the same   */
/* (key, var) lexicographic comparison Python applies to its tuples.   */
/* Only the multiset of entries is observable (the pure backend's      */
/* heapq layout differs, but every pop removes the same minimum), so a */
/* standard binary heap reproduces the pure decision sequence exactly. */
/* ------------------------------------------------------------------ */
typedef struct {
    double key;
    int var;
} HeapEntry;

static inline int he_lt(HeapEntry a, HeapEntry b)
{
    return a.key < b.key || (a.key == b.key && a.var < b.var);
}

/* ------------------------------------------------------------------ */
/* SolverCore object                                                   */
/* ------------------------------------------------------------------ */
typedef struct {
    PyObject_HEAD
    int num_vars;
    int cap_vars;

    NClause *clauses;
    int num_clauses;
    int cap_clauses;
    int num_learned;

    IntVec *watches; /* size 2 * (cap_vars + 1); lit>0 -> 2*lit, lit<0 -> -2*lit+1 */

    int8_t *assign;  /* 0 unassigned, 1 true, -1 false */
    int *level;
    int *reason;     /* clause index, -1 = none */
    double *activity;
    uint8_t *phase;

    int *trail;
    int trail_len;
    int *trail_lim;
    int trail_lim_len;
    int trail_lim_cap;
    int queue_head;

    HeapEntry *heap;
    int heap_len;
    int heap_cap;

    double activity_increment;
    int trivially_unsat;

    long long conflicts;
    long long decisions;
    long long propagations;
    long long restarts;
    long long budget_exhaustions;
    long long forgotten_clauses;

    int luby;      /* 0 geometric, 1 reluctant doubling */
    int luby_base;
    long long forget_limit; /* 0 = forgetting disabled */

    /* scratch */
    int8_t *mark;       /* add_clause dedup, per var */
    uint8_t *seen;      /* conflict analysis, per var */
    int *learned_buf;   /* learned clause under construction */
    int *level_mark;    /* LBD computation, per level */
    int level_mark_cap;
    int level_stamp;

    int mem_error; /* sticky allocation failure inside nogil sections */
} SolverCore;

static inline int widx(int lit)
{
    return lit > 0 ? 2 * lit : -2 * lit + 1;
}

static inline int litvar(int lit)
{
    return lit > 0 ? lit : -lit;
}

static inline int litval(SolverCore *s, int lit)
{
    int v = s->assign[litvar(lit)];
    if (v == 0)
        return 0;
    return lit > 0 ? v : -v;
}

static double mono_now(void)
{
#if defined(CLOCK_MONOTONIC)
    struct timespec ts;
    if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
        return (double)ts.tv_sec + (double)ts.tv_nsec * 1e-9;
#endif
    return (double)time(NULL);
}

/* ---- heap primitives --------------------------------------------- */
static int heap_reserve(SolverCore *s, int need)
{
    if (need <= s->heap_cap)
        return 0;
    int cap = s->heap_cap ? s->heap_cap : 16;
    while (cap < need)
        cap *= 2;
    HeapEntry *heap = (HeapEntry *)realloc(s->heap, (size_t)cap * sizeof(HeapEntry));
    if (heap == NULL)
        return -1;
    s->heap = heap;
    s->heap_cap = cap;
    return 0;
}

static void heap_sift_up(HeapEntry *h, int pos)
{
    HeapEntry item = h[pos];
    while (pos > 0) {
        int parent = (pos - 1) / 2;
        if (!he_lt(item, h[parent]))
            break;
        h[pos] = h[parent];
        pos = parent;
    }
    h[pos] = item;
}

static void heap_sift_down(HeapEntry *h, int len, int pos)
{
    HeapEntry item = h[pos];
    for (;;) {
        int child = 2 * pos + 1;
        if (child >= len)
            break;
        if (child + 1 < len && he_lt(h[child + 1], h[child]))
            child++;
        if (!he_lt(h[child], item))
            break;
        h[pos] = h[child];
        pos = child;
    }
    h[pos] = item;
}

static int heap_push(SolverCore *s, double key, int var)
{
    if (heap_reserve(s, s->heap_len + 1) < 0) {
        s->mem_error = 1;
        return -1;
    }
    s->heap[s->heap_len].key = key;
    s->heap[s->heap_len].var = var;
    heap_sift_up(s->heap, s->heap_len);
    s->heap_len++;
    return 0;
}

static void heap_pop_root(SolverCore *s)
{
    s->heap_len--;
    if (s->heap_len > 0) {
        s->heap[0] = s->heap[s->heap_len];
        heap_sift_down(s->heap, s->heap_len, 0);
    }
}

static int rebuild_heap(SolverCore *s)
{
    if (heap_reserve(s, s->num_vars) < 0) {
        s->mem_error = 1;
        return -1;
    }
    s->heap_len = 0;
    for (int v = 1; v <= s->num_vars; v++) {
        if (s->assign[v] == 0) {
            s->heap[s->heap_len].key = -s->activity[v];
            s->heap[s->heap_len].var = v;
            s->heap_len++;
        }
    }
    for (int i = s->heap_len / 2 - 1; i >= 0; i--)
        heap_sift_down(s->heap, s->heap_len, i);
    return 0;
}

/* ---- variable growth --------------------------------------------- */
static int grow_var_arrays(SolverCore *s, int want)
{
    if (want <= s->cap_vars)
        return 0;
    int cap = s->cap_vars ? s->cap_vars : 16;
    while (cap < want)
        cap *= 2;

#define GROW(field, type)                                                     \
    do {                                                                      \
        type *p = (type *)realloc(s->field, ((size_t)cap + 1) * sizeof(type)); \
        if (p == NULL)                                                        \
            return -1;                                                        \
        s->field = p;                                                         \
    } while (0)

    GROW(assign, int8_t);
    GROW(level, int);
    GROW(reason, int);
    GROW(activity, double);
    GROW(phase, uint8_t);
    GROW(trail, int);
    GROW(mark, int8_t);
    GROW(seen, uint8_t);
#undef GROW
    int *lb = (int *)realloc(s->learned_buf, ((size_t)cap + 2) * sizeof(int));
    if (lb == NULL)
        return -1;
    s->learned_buf = lb;

    size_t old_watch = s->watches ? 2 * ((size_t)s->cap_vars + 1) : 0;
    size_t new_watch = 2 * ((size_t)cap + 1);
    IntVec *w = (IntVec *)realloc(s->watches, new_watch * sizeof(IntVec));
    if (w == NULL)
        return -1;
    memset(w + old_watch, 0, (new_watch - old_watch) * sizeof(IntVec));
    s->watches = w;

    s->cap_vars = cap;
    return 0;
}

static int reserve_trail_lim(SolverCore *s, int need)
{
    if (need <= s->trail_lim_cap)
        return 0;
    int cap = s->trail_lim_cap ? s->trail_lim_cap : 16;
    while (cap < need)
        cap *= 2;
    int *p = (int *)realloc(s->trail_lim, (size_t)cap * sizeof(int));
    if (p == NULL)
        return -1;
    s->trail_lim = p;
    s->trail_lim_cap = cap;
    return 0;
}

static int reserve_level_marks(SolverCore *s, int need)
{
    if (need <= s->level_mark_cap)
        return 0;
    int cap = s->level_mark_cap ? s->level_mark_cap : 16;
    while (cap < need)
        cap *= 2;
    int *p = (int *)realloc(s->level_mark, (size_t)cap * sizeof(int));
    if (p == NULL)
        return -1;
    memset(p + s->level_mark_cap, 0, (size_t)(cap - s->level_mark_cap) * sizeof(int));
    s->level_mark = p;
    s->level_mark_cap = cap;
    return 0;
}

static int core_reserve_vars(SolverCore *s, int num_vars)
{
    if (num_vars <= s->num_vars)
        return 0;
    if (grow_var_arrays(s, num_vars) < 0)
        return -1;
    for (int v = s->num_vars + 1; v <= num_vars; v++) {
        s->assign[v] = 0;
        s->level[v] = 0;
        s->reason[v] = -1;
        s->activity[v] = 0.0;
        s->phase[v] = 0;
        s->mark[v] = 0;
        s->seen[v] = 0;
        if (heap_push(s, -0.0, v) < 0)
            return -1;
    }
    s->num_vars = num_vars;
    return 0;
}

/* ---- clause attach ------------------------------------------------ */
static int attach_clause(SolverCore *s, const int *lits, int size, int learned, int lbd)
{
    if (s->num_clauses == s->cap_clauses) {
        int cap = s->cap_clauses ? s->cap_clauses * 2 : 16;
        NClause *c = (NClause *)realloc(s->clauses, (size_t)cap * sizeof(NClause));
        if (c == NULL) {
            s->mem_error = 1;
            return -1;
        }
        s->clauses = c;
        s->cap_clauses = cap;
    }
    int *copy = (int *)malloc((size_t)size * sizeof(int));
    if (copy == NULL) {
        s->mem_error = 1;
        return -1;
    }
    memcpy(copy, lits, (size_t)size * sizeof(int));
    int index = s->num_clauses;
    NClause *c = &s->clauses[index];
    c->lits = copy;
    c->size = size;
    c->learned = (uint8_t)learned;
    c->lbd = lbd;
    s->num_clauses++;
    if (learned)
        s->num_learned++;
    if (iv_push(&s->watches[widx(copy[0])], index) < 0 ||
        iv_push(&s->watches[widx(copy[1])], index) < 0) {
        s->mem_error = 1;
        return -1;
    }
    return index;
}

/* ---- assignment --------------------------------------------------- */
static int enqueue(SolverCore *s, int lit, int reason)
{
    int value = litval(s, lit);
    if (value == 1)
        return 1;
    if (value == -1)
        return 0;
    int v = litvar(lit);
    s->assign[v] = lit > 0 ? 1 : -1;
    s->level[v] = s->trail_lim_len;
    s->reason[v] = reason;
    s->phase[v] = lit > 0;
    s->trail[s->trail_len++] = lit;
    return 1;
}

/* ---- unit propagation (two watched literals) ---------------------- */
static int propagate(SolverCore *s)
{
    while (s->queue_head < s->trail_len) {
        int lit = s->trail[s->queue_head++];
        s->propagations++;
        int falsified = -lit;
        IntVec *ws = &s->watches[widx(falsified)];
        int index = 0;
        while (index < ws->len) {
            int ci = ws->data[index];
            NClause *c = &s->clauses[ci];
            int *cl = c->lits;
            if (cl[0] == falsified) {
                int tmp = cl[0];
                cl[0] = cl[1];
                cl[1] = tmp;
            }
            int first = cl[0];
            if (litval(s, first) == 1) {
                index++;
                continue;
            }
            int found = 0;
            for (int p = 2; p < c->size; p++) {
                int cand = cl[p];
                if (litval(s, cand) != -1) {
                    cl[p] = cl[1];
                    cl[1] = cand;
                    if (iv_push(&s->watches[widx(cand)], ci) < 0) {
                        s->mem_error = 1;
                        return -2;
                    }
                    ws->data[index] = ws->data[ws->len - 1];
                    ws->len--;
                    found = 1;
                    break;
                }
            }
            if (found)
                continue;
            if (litval(s, first) == -1)
                return ci;
            enqueue(s, first, ci);
            index++;
        }
    }
    return -1;
}

/* ---- VSIDS -------------------------------------------------------- */
static int bump_activity(SolverCore *s, int v)
{
    s->activity[v] += s->activity_increment;
    if (s->activity[v] > 1e100) {
        for (int i = 1; i <= s->num_vars; i++)
            s->activity[i] *= 1e-100;
        s->activity_increment *= 1e-100;
        if (rebuild_heap(s) < 0)
            return -1;
    }
    return 0;
}

/* ---- conflict analysis (first UIP) -------------------------------- */
static int analyze(SolverCore *s, int conflict_index, int *out_size,
                   int *out_btlevel, int *out_lbd)
{
    int *learned = s->learned_buf;
    int learned_len = 1;
    learned[0] = 0;
    uint8_t *seen = s->seen;
    int counter = 0;
    int lit = 0;
    NClause *c = &s->clauses[conflict_index];
    int trail_index = s->trail_len - 1;
    int current_level = s->trail_lim_len;

    for (;;) {
        int *cl = c->lits;
        int size = c->size;
        for (int k = 0; k < size; k++) {
            int q = cl[k];
            if (lit != 0 && q == lit)
                continue;
            int v = litvar(q);
            if (seen[v] || s->level[v] == 0)
                continue;
            seen[v] = 1;
            if (bump_activity(s, v) < 0)
                return -1;
            if (s->level[v] == current_level)
                counter++;
            else
                learned[learned_len++] = q;
        }
        while (!seen[litvar(s->trail[trail_index])])
            trail_index--;
        lit = s->trail[trail_index];
        int v = litvar(lit);
        seen[v] = 0;
        trail_index--;
        counter--;
        if (counter == 0)
            break;
        c = &s->clauses[s->reason[v]];
    }
    learned[0] = -lit;
    for (int k = 1; k < learned_len; k++)
        seen[litvar(learned[k])] = 0;

    int btlevel;
    if (learned_len == 1) {
        btlevel = 0;
    } else {
        int best = 1;
        for (int p = 2; p < learned_len; p++) {
            if (s->level[litvar(learned[p])] > s->level[litvar(learned[best])])
                best = p;
        }
        int tmp = learned[1];
        learned[1] = learned[best];
        learned[best] = tmp;
        btlevel = s->level[litvar(learned[1])];
    }

    int lbd = 0;
    if (s->forget_limit > 0) {
        /* Distinct decision levels among the learned literals, measured
         * before backtracking — the classic LBD score. */
        if (reserve_level_marks(s, current_level + 2) < 0) {
            s->mem_error = 1;
            return -1;
        }
        s->level_stamp++;
        for (int k = 0; k < learned_len; k++) {
            int lvl = s->level[litvar(learned[k])];
            if (s->level_mark[lvl] != s->level_stamp) {
                s->level_mark[lvl] = s->level_stamp;
                lbd++;
            }
        }
    }

    *out_size = learned_len;
    *out_btlevel = btlevel;
    *out_lbd = lbd;
    return 0;
}

/* ---- backtracking -------------------------------------------------- */
static int backtrack(SolverCore *s, int target_level)
{
    if (s->trail_lim_len <= target_level)
        return 0;
    int boundary = s->trail_lim[target_level];
    for (int i = s->trail_len - 1; i >= boundary; i--) {
        int lit = s->trail[i];
        int v = litvar(lit);
        s->assign[v] = 0;
        s->reason[v] = -1;
        if (heap_push(s, -s->activity[v], v) < 0)
            return -1;
    }
    s->trail_len = boundary;
    s->trail_lim_len = target_level;
    s->queue_head = s->trail_len;
    return 0;
}

/* ---- learned-clause database management ---------------------------- */
static void rebuild_watches_and_reasons(SolverCore *s)
{
    size_t watch_count = 2 * ((size_t)s->cap_vars + 1);
    for (size_t i = 0; i < watch_count; i++)
        s->watches[i].len = 0;
    for (int index = 0; index < s->num_clauses; index++) {
        NClause *c = &s->clauses[index];
        if (c->size >= 2) {
            if (iv_push(&s->watches[widx(c->lits[0])], index) < 0 ||
                iv_push(&s->watches[widx(c->lits[1])], index) < 0) {
                s->mem_error = 1;
                return;
            }
        }
    }
    for (int v = 1; v <= s->num_vars; v++)
        s->reason[v] = -1;
}

/* Size-based policy — the historic default, byte-identical to the pure
 * solver's _reduce_learned: keep short learned clauses, drop the older
 * half of the long ones. */
static int reduce_learned(SolverCore *s)
{
    if (s->trail_lim_len != 0)
        return 0;
    if (s->num_learned < 2000)
        return 0;
    int num_long = 0;
    for (int i = 0; i < s->num_clauses; i++) {
        NClause *c = &s->clauses[i];
        if (c->learned && c->size > 4)
            num_long++;
    }
    int keep_count = (int)((double)num_long * 0.5);
    int drop_prefix = num_long - keep_count;

    NClause *kept = (NClause *)malloc((size_t)(s->num_clauses ? s->num_clauses : 1) * sizeof(NClause));
    NClause *tail = (NClause *)malloc((size_t)(num_long ? num_long : 1) * sizeof(NClause));
    if (kept == NULL || tail == NULL) {
        free(kept);
        free(tail);
        s->mem_error = 1;
        return -1;
    }
    int kept_len = 0, tail_len = 0, seen_long = 0;
    for (int i = 0; i < s->num_clauses; i++) {
        NClause *c = &s->clauses[i];
        if (!c->learned || c->size <= 4) {
            kept[kept_len++] = *c;
        } else {
            seen_long++;
            if (seen_long > drop_prefix)
                tail[tail_len++] = *c;
            else
                free(c->lits);
        }
    }
    int total = kept_len;
    memcpy(s->clauses, kept, (size_t)kept_len * sizeof(NClause));
    for (int i = 0; i < tail_len; i++)
        s->clauses[total + i] = tail[i];
    total += tail_len;
    s->num_clauses = total;
    free(kept);
    free(tail);
    int num_learned = 0;
    for (int i = 0; i < s->num_clauses; i++)
        if (s->clauses[i].learned)
            num_learned++;
    s->num_learned = num_learned;
    rebuild_watches_and_reasons(s);
    return s->mem_error ? -1 : 0;
}

/* LBD policy (REPRO_CLAUSE_FORGET): glue clauses (LBD <= 2) are permanent;
 * of the rest, the half with the highest LBD is forgotten (ties broken by
 * age — newer clauses survive).  Mirrors _reduce_learned_lbd exactly. */
static int reduce_learned_lbd(SolverCore *s)
{
    if (s->trail_lim_len != 0)
        return 0;
    if ((long long)s->num_learned < s->forget_limit)
        return 0;
    int candidates = 0;
    int max_lbd = 0;
    for (int i = 0; i < s->num_clauses; i++) {
        NClause *c = &s->clauses[i];
        if (c->learned && c->lbd > 2) {
            candidates++;
            if (c->lbd > max_lbd)
                max_lbd = c->lbd;
        }
    }
    if (candidates == 0) {
        s->forget_limit += s->forget_limit / 2;
        return 0;
    }
    long long keep_target = candidates / 2;
    long long *buckets = (long long *)calloc((size_t)max_lbd + 1, sizeof(long long));
    uint8_t *keep_flag = (uint8_t *)calloc((size_t)s->num_clauses, 1);
    if (buckets == NULL || keep_flag == NULL) {
        free(buckets);
        free(keep_flag);
        s->mem_error = 1;
        return -1;
    }
    for (int i = 0; i < s->num_clauses; i++) {
        NClause *c = &s->clauses[i];
        if (c->learned && c->lbd > 2)
            buckets[c->lbd]++;
    }
    int threshold = 3;
    long long acc = 0;
    while (threshold <= max_lbd && acc + buckets[threshold] <= keep_target) {
        acc += buckets[threshold];
        threshold++;
    }
    long long remaining = keep_target - acc;
    long long taken = 0;
    for (int i = s->num_clauses - 1; i >= 0 && taken < remaining; i--) {
        NClause *c = &s->clauses[i];
        if (c->learned && c->lbd == threshold) {
            keep_flag[i] = 1;
            taken++;
        }
    }
    int out = 0;
    for (int i = 0; i < s->num_clauses; i++) {
        NClause *c = &s->clauses[i];
        int keep = !c->learned || c->lbd <= 2 || c->lbd < threshold || keep_flag[i];
        if (keep) {
            s->clauses[out++] = *c;
        } else {
            s->forgotten_clauses++;
            free(c->lits);
        }
    }
    s->num_clauses = out;
    free(buckets);
    free(keep_flag);
    int num_learned = 0;
    for (int i = 0; i < s->num_clauses; i++)
        if (s->clauses[i].learned)
            num_learned++;
    s->num_learned = num_learned;
    rebuild_watches_and_reasons(s);
    s->forget_limit += s->forget_limit / 2;
    return s->mem_error ? -1 : 0;
}

/* ---- branching ----------------------------------------------------- */
static int pick_branch(SolverCore *s)
{
    if (s->heap_len > 64 + 4 * s->num_vars) {
        if (rebuild_heap(s) < 0)
            return -2;
    }
    while (s->heap_len > 0) {
        double key = s->heap[0].key;
        int v = s->heap[0].var;
        if (s->assign[v] != 0 || -key != s->activity[v]) {
            heap_pop_root(s);
            continue;
        }
        return v;
    }
    return 0;
}

/* ---- add_clause (level-0 simplification) --------------------------- */
/* Return codes: 0 ok, -1 memory error.  Mirrors the pure add_clause body
 * after its validation (the Python wrapper rejects literal 0 and handles
 * the trivially-unsat early return and problem-clause counting). */
static int core_add_clause(SolverCore *s, const int *lits, int n)
{
    if (backtrack(s, 0) < 0)
        return -1;
    if (n > 0) {
        int maxv = 0;
        for (int i = 0; i < n; i++) {
            int v = litvar(lits[i]);
            if (v > maxv)
                maxv = v;
        }
        if (core_reserve_vars(s, maxv) < 0)
            return -1;
    }
    int *cleaned = (int *)malloc((size_t)(n ? n : 1) * sizeof(int));
    if (cleaned == NULL)
        return -1;
    int cleaned_len = 0;
    int dropped = 0;
    for (int i = 0; i < n; i++) {
        int lit = lits[i];
        int v = litvar(lit);
        int sign = lit > 0 ? 1 : -1;
        if (s->mark[v] == -sign) { /* tautology */
            dropped = 1;
            break;
        }
        if (s->mark[v] == sign)
            continue;
        int value = litval(s, lit);
        if (value == 1) { /* satisfied at level 0 */
            dropped = 1;
            break;
        }
        if (value == -1)
            continue;
        s->mark[v] = sign;
        cleaned[cleaned_len++] = lit;
    }
    for (int i = 0; i < cleaned_len; i++)
        s->mark[litvar(cleaned[i])] = 0;
    if (dropped) {
        free(cleaned);
        return 0;
    }
    if (cleaned_len == 0) {
        free(cleaned);
        s->trivially_unsat = 1;
        return 0;
    }
    if (cleaned_len == 1) {
        int ok = enqueue(s, cleaned[0], -1);
        free(cleaned);
        if (!ok) {
            s->trivially_unsat = 1;
            return 0;
        }
        int conflict = propagate(s);
        if (conflict == -2)
            return -1;
        if (conflict >= 0)
            s->trivially_unsat = 1;
        return 0;
    }
    int index = attach_clause(s, cleaned, cleaned_len, 0, 0);
    free(cleaned);
    return index < 0 ? -1 : 0;
}

/* ---- solve --------------------------------------------------------- */
#define SOLVE_UNSAT 0
#define SOLVE_SAT 1
#define SOLVE_UNKNOWN 2
#define SOLVE_MEMERR (-1)

static int core_solve(SolverCore *s, const int *assumptions, int nassump,
                      long long max_conflicts, long long max_propagations,
                      double max_seconds)
{
    long long conflicts_base = s->conflicts;
    long long props_base = s->propagations;
    int has_budget = (max_conflicts >= 0 || max_propagations >= 0 || max_seconds > 0.0);
    double deadline = -1.0;
    if (max_seconds > 0.0)
        deadline = mono_now() + max_seconds;

    int max_assump_var = 0;
    for (int i = 0; i < nassump; i++) {
        int v = litvar(assumptions[i]);
        if (v > max_assump_var)
            max_assump_var = v;
    }
    if (core_reserve_vars(s, max_assump_var) < 0)
        return SOLVE_MEMERR;
    if (reserve_trail_lim(s, s->num_vars + nassump + 2) < 0)
        return SOLVE_MEMERR;
    if (backtrack(s, 0) < 0)
        return SOLVE_MEMERR;

    long long luby_u = 1, luby_v = 1;
    long long restart_limit;
    if (s->luby)
        restart_limit = (long long)s->luby_base * luby_v;
    else
        restart_limit = 100;
    long long conflicts_since_restart = 0;

    for (;;) {
        int conflict = propagate(s);
        if (conflict == -2)
            return SOLVE_MEMERR;
        if (conflict >= 0) {
            s->conflicts++;
            conflicts_since_restart++;
            if (s->trail_lim_len == 0) {
                s->trivially_unsat = 1;
                return SOLVE_UNSAT;
            }
            if (has_budget) {
                int exhausted =
                    (max_conflicts >= 0 &&
                     s->conflicts - conflicts_base >= max_conflicts) ||
                    (max_propagations >= 0 &&
                     s->propagations - props_base >= max_propagations) ||
                    (deadline > 0.0 && mono_now() >= deadline);
                if (exhausted) {
                    s->budget_exhaustions++;
                    if (backtrack(s, 0) < 0)
                        return SOLVE_MEMERR;
                    return SOLVE_UNKNOWN;
                }
            }
            int learned_size, btlevel, lbd;
            if (analyze(s, conflict, &learned_size, &btlevel, &lbd) < 0)
                return SOLVE_MEMERR;
            if (backtrack(s, btlevel) < 0)
                return SOLVE_MEMERR;
            if (learned_size == 1) {
                if (!enqueue(s, s->learned_buf[0], -1)) {
                    s->trivially_unsat = 1;
                    return SOLVE_UNSAT;
                }
            } else {
                int ci = attach_clause(s, s->learned_buf, learned_size, 1, lbd);
                if (ci < 0)
                    return SOLVE_MEMERR;
                enqueue(s, s->learned_buf[0], ci);
            }
            s->activity_increment /= 0.95;
            if (conflicts_since_restart >= restart_limit) {
                conflicts_since_restart = 0;
                s->restarts++;
                if (s->luby) {
                    if ((luby_u & -luby_u) == luby_v) {
                        luby_u++;
                        luby_v = 1;
                    } else {
                        luby_v <<= 1;
                    }
                    restart_limit = (long long)s->luby_base * luby_v;
                } else {
                    restart_limit = (long long)((double)restart_limit * 1.5);
                }
                if (backtrack(s, 0) < 0)
                    return SOLVE_MEMERR;
                if (s->forget_limit > 0) {
                    if (reduce_learned_lbd(s) < 0)
                        return SOLVE_MEMERR;
                } else {
                    if (reduce_learned(s) < 0)
                        return SOLVE_MEMERR;
                }
            }
            continue;
        }

        if (s->trail_lim_len < nassump) {
            int lit = assumptions[s->trail_lim_len];
            int value = litval(s, lit);
            if (value == -1)
                return SOLVE_UNSAT;
            s->trail_lim[s->trail_lim_len++] = s->trail_len;
            if (value == 0)
                enqueue(s, lit, -1);
            continue;
        }

        int v = pick_branch(s);
        if (v == -2)
            return SOLVE_MEMERR;
        if (v == 0)
            return SOLVE_SAT;
        s->decisions++;
        s->trail_lim[s->trail_lim_len++] = s->trail_len;
        enqueue(s, s->phase[v] ? v : -v, -1);
    }
}

/* ------------------------------------------------------------------ */
/* SolverCore Python type                                              */
/* ------------------------------------------------------------------ */
static PyObject *SolverCore_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    SolverCore *self = (SolverCore *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    self->activity_increment = 1.0;
    self->luby_base = 32;
    return (PyObject *)self;
}

static int SolverCore_init(SolverCore *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"luby", "luby_base", "forget_limit", NULL};
    int luby = 0;
    int luby_base = 32;
    long long forget_limit = 0;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|iiL", kwlist, &luby,
                                     &luby_base, &forget_limit))
        return -1;
    self->luby = luby ? 1 : 0;
    self->luby_base = luby_base;
    self->forget_limit = forget_limit > 0 ? forget_limit : 0;
    return 0;
}

static void SolverCore_dealloc(SolverCore *self)
{
    for (int i = 0; i < self->num_clauses; i++)
        free(self->clauses[i].lits);
    free(self->clauses);
    if (self->watches != NULL) {
        size_t watch_count = 2 * ((size_t)self->cap_vars + 1);
        for (size_t i = 0; i < watch_count; i++)
            free(self->watches[i].data);
        free(self->watches);
    }
    free(self->assign);
    free(self->level);
    free(self->reason);
    free(self->activity);
    free(self->phase);
    free(self->trail);
    free(self->trail_lim);
    free(self->heap);
    free(self->mark);
    free(self->seen);
    free(self->learned_buf);
    free(self->level_mark);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyObject *SolverCore_reserve_vars(SolverCore *self, PyObject *arg)
{
    long num_vars = PyLong_AsLong(arg);
    if (num_vars == -1 && PyErr_Occurred())
        return NULL;
    if (num_vars > INT_MAX / 8) {
        PyErr_SetString(PyExc_OverflowError, "too many variables");
        return NULL;
    }
    if (core_reserve_vars(self, (int)num_vars) < 0)
        return PyErr_NoMemory();
    Py_RETURN_NONE;
}

static int *literals_from_sequence(PyObject *seq_obj, int *out_n)
{
    PyObject *seq = PySequence_Fast(seq_obj, "clause must be a sequence of literals");
    if (seq == NULL)
        return NULL;
    Py_ssize_t n = PySequence_Fast_GET_SIZE(seq);
    int *lits = (int *)malloc((size_t)(n ? n : 1) * sizeof(int));
    if (lits == NULL) {
        Py_DECREF(seq);
        PyErr_NoMemory();
        return NULL;
    }
    for (Py_ssize_t i = 0; i < n; i++) {
        long lit = PyLong_AsLong(PySequence_Fast_GET_ITEM(seq, i));
        if (lit == -1 && PyErr_Occurred()) {
            free(lits);
            Py_DECREF(seq);
            return NULL;
        }
        if (lit == 0 || lit > INT_MAX / 8 || lit < -(INT_MAX / 8)) {
            free(lits);
            Py_DECREF(seq);
            PyErr_SetString(PyExc_ValueError, "literal out of range");
            return NULL;
        }
        lits[i] = (int)lit;
    }
    Py_DECREF(seq);
    *out_n = (int)n;
    return lits;
}

static PyObject *SolverCore_add_clause(SolverCore *self, PyObject *arg)
{
    int n = 0;
    int *lits = literals_from_sequence(arg, &n);
    if (lits == NULL)
        return NULL;
    int rc = core_add_clause(self, lits, n);
    free(lits);
    if (rc < 0)
        return PyErr_NoMemory();
    Py_RETURN_NONE;
}

static PyObject *SolverCore_solve(SolverCore *self, PyObject *args)
{
    PyObject *assumptions_obj;
    long long max_conflicts = -1;
    long long max_propagations = -1;
    double max_seconds = -1.0;
    if (!PyArg_ParseTuple(args, "O|LLd", &assumptions_obj, &max_conflicts,
                          &max_propagations, &max_seconds))
        return NULL;
    int nassump = 0;
    int *assumptions = literals_from_sequence(assumptions_obj, &nassump);
    if (assumptions == NULL)
        return NULL;

    int status;
    Py_BEGIN_ALLOW_THREADS
    status = core_solve(self, assumptions, nassump, max_conflicts,
                        max_propagations, max_seconds);
    Py_END_ALLOW_THREADS
    free(assumptions);

    if (status == SOLVE_MEMERR || self->mem_error) {
        self->mem_error = 0;
        return PyErr_NoMemory();
    }

    PyObject *model = Py_None;
    Py_INCREF(Py_None);
    if (status == SOLVE_SAT) {
        Py_DECREF(Py_None);
        model = PyDict_New();
        if (model == NULL)
            return NULL;
        for (int v = 1; v <= self->num_vars; v++) {
            if (self->assign[v] == 0)
                continue;
            PyObject *key = PyLong_FromLong(v);
            PyObject *value = PyBool_FromLong(self->assign[v] == 1);
            if (key == NULL || value == NULL ||
                PyDict_SetItem(model, key, value) < 0) {
                Py_XDECREF(key);
                Py_XDECREF(value);
                Py_DECREF(model);
                return NULL;
            }
            Py_DECREF(key);
            Py_DECREF(value);
        }
    }
    PyObject *result = Py_BuildValue("iN", status, model);
    return result;
}

#define LL_GETTER(name, field)                                        \
    static PyObject *SolverCore_get_##name(SolverCore *self, void *c) \
    {                                                                 \
        (void)c;                                                      \
        return PyLong_FromLongLong(self->field);                      \
    }

LL_GETTER(conflicts, conflicts)
LL_GETTER(decisions, decisions)
LL_GETTER(propagations, propagations)
LL_GETTER(restarts, restarts)
LL_GETTER(budget_exhaustions, budget_exhaustions)
LL_GETTER(forgotten_clauses, forgotten_clauses)
LL_GETTER(num_learned, num_learned)
LL_GETTER(num_vars, num_vars)
LL_GETTER(num_clauses, num_clauses)
#undef LL_GETTER

static PyObject *SolverCore_get_trivially_unsat(SolverCore *self, void *c)
{
    (void)c;
    return PyBool_FromLong(self->trivially_unsat);
}

static PyGetSetDef SolverCore_getset[] = {
    {"conflicts", (getter)SolverCore_get_conflicts, NULL, NULL, NULL},
    {"decisions", (getter)SolverCore_get_decisions, NULL, NULL, NULL},
    {"propagations", (getter)SolverCore_get_propagations, NULL, NULL, NULL},
    {"restarts", (getter)SolverCore_get_restarts, NULL, NULL, NULL},
    {"budget_exhaustions", (getter)SolverCore_get_budget_exhaustions, NULL, NULL, NULL},
    {"forgotten_clauses", (getter)SolverCore_get_forgotten_clauses, NULL, NULL, NULL},
    {"num_learned", (getter)SolverCore_get_num_learned, NULL, NULL, NULL},
    {"num_vars", (getter)SolverCore_get_num_vars, NULL, NULL, NULL},
    {"num_clauses", (getter)SolverCore_get_num_clauses, NULL, NULL, NULL},
    {"trivially_unsat", (getter)SolverCore_get_trivially_unsat, NULL, NULL, NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyMethodDef SolverCore_methods[] = {
    {"reserve_vars", (PyCFunction)SolverCore_reserve_vars, METH_O,
     "Grow the variable range to num_vars."},
    {"add_clause", (PyCFunction)SolverCore_add_clause, METH_O,
     "Add a clause (sequence of non-zero integer literals)."},
    {"solve", (PyCFunction)SolverCore_solve, METH_VARARGS,
     "solve(assumptions, max_conflicts=-1, max_propagations=-1, max_seconds=-1)"
     " -> (status, model) with status 0=unsat, 1=sat, 2=unknown."},
    {NULL, NULL, 0, NULL},
};

static PyTypeObject SolverCoreType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._native._core.SolverCore",
    .tp_basicsize = sizeof(SolverCore),
    .tp_dealloc = (destructor)SolverCore_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT,
    .tp_doc = "Compiled CDCL inner core (transcript-identical to the pure solver).",
    .tp_methods = SolverCore_methods,
    .tp_getset = SolverCore_getset,
    .tp_init = (initproc)SolverCore_init,
    .tp_new = SolverCore_new,
};

/* ------------------------------------------------------------------ */
/* Packed lane evaluation                                              */
/* ------------------------------------------------------------------ */

/* Evaluate one packed truth table over word-array lanes; mirrors
 * repro.sim.engine.evaluate_table_lanes (same on-set/off-set expansion,
 * so the resulting words are identical to the pure bigint path). */
static void eval_table_words(const uint8_t *bits, Py_ssize_t bits_len, int arity,
                             const uint64_t **ins, const uint64_t *mask,
                             uint64_t *out, Py_ssize_t nwords, uint64_t *term)
{
    if (arity == 0) {
        int bit = bits_len > 0 ? (bits[0] & 1) : 0;
        if (bit)
            memcpy(out, mask, (size_t)nwords * 8);
        else
            memset(out, 0, (size_t)nwords * 8);
        return;
    }
    long rows = 1L << arity;
    long ones = 0;
    for (long r = 0; r < rows; r++) {
        if ((r >> 3) < bits_len && ((bits[r >> 3] >> (r & 7)) & 1))
            ones++;
    }
    if (ones == 0) {
        memset(out, 0, (size_t)nwords * 8);
        return;
    }
    if (ones == rows) {
        memcpy(out, mask, (size_t)nwords * 8);
        return;
    }
    int invert = (ones * 2 > rows);
    memset(out, 0, (size_t)nwords * 8);
    for (long r = 0; r < rows; r++) {
        int bit = (r >> 3) < bits_len ? ((bits[r >> 3] >> (r & 7)) & 1) : 0;
        if (invert)
            bit = !bit;
        if (!bit)
            continue;
        memcpy(term, mask, (size_t)nwords * 8);
        uint64_t any = 1;
        for (int v = 0; v < arity; v++) {
            const uint64_t *lane = ins[v];
            any = 0;
            if ((r >> v) & 1) {
                for (Py_ssize_t w = 0; w < nwords; w++) {
                    term[w] &= lane[w];
                    any |= term[w];
                }
            } else {
                for (Py_ssize_t w = 0; w < nwords; w++) {
                    term[w] &= lane[w] ^ mask[w];
                    any |= term[w];
                }
            }
            if (!any)
                break;
        }
        if (any) {
            for (Py_ssize_t w = 0; w < nwords; w++)
                out[w] |= term[w];
        }
    }
    if (invert) {
        for (Py_ssize_t w = 0; w < nwords; w++)
            out[w] ^= mask[w];
    }
}

static int buffer_as_int32(Py_buffer *view, const int32_t **out, Py_ssize_t *count)
{
    if (view->len % 4 != 0) {
        PyErr_SetString(PyExc_ValueError, "int32 buffer length not a multiple of 4");
        return -1;
    }
    *out = (const int32_t *)view->buf;
    *count = view->len / 4;
    return 0;
}

/* run_netlist(num_nets, nwords, mask, input_idx, input_lanes, out_idx,
 *             arities, in_offsets, in_flat, funcs) -> bytes */
static PyObject *native_run_netlist(PyObject *module, PyObject *args)
{
    (void)module;
    Py_ssize_t num_nets, nwords;
    Py_buffer mask_buf, input_idx_buf, out_idx_buf, arity_buf, offsets_buf, flat_buf;
    PyObject *input_lanes, *funcs;
    if (!PyArg_ParseTuple(args, "nny*y*Oy*y*y*y*O", &num_nets, &nwords,
                          &mask_buf, &input_idx_buf, &input_lanes, &out_idx_buf,
                          &arity_buf, &offsets_buf, &flat_buf, &funcs))
        return NULL;

    PyObject *result = NULL;
    uint64_t *lanes = NULL, *scratch = NULL, *term = NULL;
    const uint64_t **ins = NULL;

    const int32_t *input_idx, *out_idx, *arities, *offsets, *flat;
    Py_ssize_t num_inputs, num_instances, arity_count, offsets_count, flat_count;
    if (buffer_as_int32(&input_idx_buf, &input_idx, &num_inputs) < 0 ||
        buffer_as_int32(&out_idx_buf, &out_idx, &num_instances) < 0 ||
        buffer_as_int32(&arity_buf, &arities, &arity_count) < 0 ||
        buffer_as_int32(&offsets_buf, &offsets, &offsets_count) < 0 ||
        buffer_as_int32(&flat_buf, &flat, &flat_count) < 0)
        goto done;
    if (arity_count != num_instances || offsets_count != num_instances + 1 ||
        mask_buf.len != nwords * 8 || num_nets < 2) {
        PyErr_SetString(PyExc_ValueError, "inconsistent netlist program");
        goto done;
    }
    if (!PyList_Check(input_lanes) || PyList_GET_SIZE(input_lanes) != num_inputs ||
        !PyList_Check(funcs) || PyList_GET_SIZE(funcs) != num_instances) {
        PyErr_SetString(PyExc_ValueError, "inconsistent lane/function lists");
        goto done;
    }

    int max_arity = 0;
    for (Py_ssize_t j = 0; j < num_instances; j++)
        if (arities[j] > max_arity)
            max_arity = arities[j];

    lanes = (uint64_t *)calloc((size_t)num_nets * (size_t)nwords, 8);
    scratch = (uint64_t *)malloc((size_t)nwords * 8);
    term = (uint64_t *)malloc((size_t)nwords * 8);
    ins = (const uint64_t **)malloc((size_t)(max_arity ? max_arity : 1) * sizeof(uint64_t *));
    if (lanes == NULL || scratch == NULL || term == NULL || ins == NULL) {
        PyErr_NoMemory();
        goto done;
    }
    const uint64_t *mask = (const uint64_t *)mask_buf.buf;
    /* net 1 is CONST1 = the all-ones mask lane; net 0 (CONST0) stays 0 */
    memcpy(lanes + nwords, mask, (size_t)nwords * 8);
    for (Py_ssize_t i = 0; i < num_inputs; i++) {
        PyObject *item = PyList_GET_ITEM(input_lanes, i);
        char *data;
        Py_ssize_t len;
        if (PyBytes_AsStringAndSize(item, &data, &len) < 0)
            goto done;
        if (len != nwords * 8 || input_idx[i] < 0 || input_idx[i] >= num_nets) {
            PyErr_SetString(PyExc_ValueError, "bad input lane");
            goto done;
        }
        memcpy(lanes + (size_t)input_idx[i] * nwords, data, (size_t)len);
    }
    for (Py_ssize_t j = 0; j < num_instances; j++) {
        int arity = arities[j];
        int32_t off = offsets[j];
        if (off < 0 || offsets[j + 1] - off != arity || offsets[j + 1] > flat_count) {
            PyErr_SetString(PyExc_ValueError, "bad instance pin table");
            goto done;
        }
        for (int v = 0; v < arity; v++) {
            int32_t net = flat[off + v];
            if (net < 0 || net >= num_nets) {
                PyErr_SetString(PyExc_ValueError, "bad instance input net");
                goto done;
            }
            ins[v] = lanes + (size_t)net * nwords;
        }
        PyObject *func = PyList_GET_ITEM(funcs, j);
        char *bits;
        Py_ssize_t bits_len;
        if (PyBytes_AsStringAndSize(func, &bits, &bits_len) < 0)
            goto done;
        eval_table_words((const uint8_t *)bits, bits_len, arity, ins, mask,
                         scratch, nwords, term);
        if (out_idx[j] < 0 || out_idx[j] >= num_nets) {
            PyErr_SetString(PyExc_ValueError, "bad instance output net");
            goto done;
        }
        memcpy(lanes + (size_t)out_idx[j] * nwords, scratch, (size_t)nwords * 8);
    }
    result = PyBytes_FromStringAndSize((const char *)lanes,
                                       (Py_ssize_t)((size_t)num_nets * (size_t)nwords * 8));

done:
    free(lanes);
    free(scratch);
    free(term);
    free(ins);
    PyBuffer_Release(&mask_buf);
    PyBuffer_Release(&input_idx_buf);
    PyBuffer_Release(&out_idx_buf);
    PyBuffer_Release(&arity_buf);
    PyBuffer_Release(&offsets_buf);
    PyBuffer_Release(&flat_buf);
    return result;
}

/* run_aig(num_nodes, nwords, mask, input_nodes, input_lanes, fanin0,
 *         fanin1, is_and) -> bytes */
static PyObject *native_run_aig(PyObject *module, PyObject *args)
{
    (void)module;
    Py_ssize_t num_nodes, nwords;
    Py_buffer mask_buf, input_nodes_buf, fanin0_buf, fanin1_buf, is_and_buf;
    PyObject *input_lanes;
    if (!PyArg_ParseTuple(args, "nny*y*Oy*y*y*", &num_nodes, &nwords, &mask_buf,
                          &input_nodes_buf, &input_lanes, &fanin0_buf,
                          &fanin1_buf, &is_and_buf))
        return NULL;

    PyObject *result = NULL;
    uint64_t *lanes = NULL;
    const int32_t *input_nodes, *fanin0, *fanin1;
    Py_ssize_t num_inputs, f0_count, f1_count;
    if (buffer_as_int32(&input_nodes_buf, &input_nodes, &num_inputs) < 0 ||
        buffer_as_int32(&fanin0_buf, &fanin0, &f0_count) < 0 ||
        buffer_as_int32(&fanin1_buf, &fanin1, &f1_count) < 0)
        goto done;
    if (f0_count != num_nodes || f1_count != num_nodes ||
        is_and_buf.len != num_nodes || mask_buf.len != nwords * 8 ||
        !PyList_Check(input_lanes) || PyList_GET_SIZE(input_lanes) != num_inputs) {
        PyErr_SetString(PyExc_ValueError, "inconsistent AIG program");
        goto done;
    }
    const uint8_t *is_and = (const uint8_t *)is_and_buf.buf;
    const uint64_t *mask = (const uint64_t *)mask_buf.buf;
    lanes = (uint64_t *)calloc((size_t)num_nodes * (size_t)nwords, 8);
    if (lanes == NULL) {
        PyErr_NoMemory();
        goto done;
    }
    for (Py_ssize_t i = 0; i < num_inputs; i++) {
        PyObject *item = PyList_GET_ITEM(input_lanes, i);
        char *data;
        Py_ssize_t len;
        if (PyBytes_AsStringAndSize(item, &data, &len) < 0)
            goto done;
        if (len != nwords * 8 || input_nodes[i] < 0 || input_nodes[i] >= num_nodes) {
            PyErr_SetString(PyExc_ValueError, "bad input lane");
            goto done;
        }
        memcpy(lanes + (size_t)input_nodes[i] * nwords, data, (size_t)len);
    }
    for (Py_ssize_t node = 1; node < num_nodes; node++) {
        if (!is_and[node])
            continue;
        int32_t f0 = fanin0[node];
        int32_t f1 = fanin1[node];
        if ((f0 >> 1) >= node || (f1 >> 1) >= node || f0 < 0 || f1 < 0) {
            PyErr_SetString(PyExc_ValueError, "bad AIG fanin");
            goto done;
        }
        const uint64_t *l0 = lanes + (size_t)(f0 >> 1) * nwords;
        const uint64_t *l1 = lanes + (size_t)(f1 >> 1) * nwords;
        uint64_t *out = lanes + (size_t)node * nwords;
        uint64_t c0 = (uint64_t)0 - (uint64_t)(f0 & 1);
        uint64_t c1 = (uint64_t)0 - (uint64_t)(f1 & 1);
        for (Py_ssize_t w = 0; w < nwords; w++)
            out[w] = (l0[w] ^ (mask[w] & c0)) & (l1[w] ^ (mask[w] & c1));
    }
    result = PyBytes_FromStringAndSize((const char *)lanes,
                                       (Py_ssize_t)((size_t)num_nodes * (size_t)nwords * 8));

done:
    free(lanes);
    PyBuffer_Release(&mask_buf);
    PyBuffer_Release(&input_nodes_buf);
    PyBuffer_Release(&fanin0_buf);
    PyBuffer_Release(&fanin1_buf);
    PyBuffer_Release(&is_and_buf);
    return result;
}

/* ------------------------------------------------------------------ */
/* Module                                                              */
/* ------------------------------------------------------------------ */
static PyMethodDef module_methods[] = {
    {"run_netlist", native_run_netlist, METH_VARARGS,
     "Packed topological netlist pass over uint64 word lanes."},
    {"run_aig", native_run_aig, METH_VARARGS,
     "Packed AIG pass over uint64 word lanes."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef core_module = {
    PyModuleDef_HEAD_INIT,
    "repro._native._core",
    "Compiled solver and simulator cores (optional twin of the pure backend).",
    -1,
    module_methods,
    NULL,
    NULL,
    NULL,
    NULL,
};

PyMODINIT_FUNC PyInit__core(void)
{
    if (PyType_Ready(&SolverCoreType) < 0)
        return NULL;
    PyObject *module = PyModule_Create(&core_module);
    if (module == NULL)
        return NULL;
    Py_INCREF(&SolverCoreType);
    if (PyModule_AddObject(module, "SolverCore", (PyObject *)&SolverCoreType) < 0) {
        Py_DECREF(&SolverCoreType);
        Py_DECREF(module);
        return NULL;
    }
    if (PyModule_AddStringConstant(module, "BACKEND_ABI", "1") < 0) {
        Py_DECREF(module);
        return NULL;
    }
    return module;
}

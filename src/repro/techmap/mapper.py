"""Phase III driver: camouflage technology mapping of a merged netlist.

Takes the synthesised merged netlist (whose primary inputs include the
select signals), covers every fanout-free tree with camouflaged cells using
:func:`repro.techmap.cover.cover_tree`, and assembles the camouflaged
netlist.  The select inputs disappear: every dependence on them has been
absorbed into the choice of plausible function of some camouflaged cell.

The result object keeps, for every camouflaged instance, the mapping from
local select assignments to configured functions, so that the designer can
derive the cell configuration realising any viable function
(:meth:`CamouflagedMapping.configuration_for_select`) and the verification
and attack modules can reason about plausible functions per instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

from ..camo.config import CircuitConfiguration
from ..camo.library import CamouflageLibrary, default_camouflage_library
from ..logic.truthtable import TruthTable
from ..netlist.library import CellLibrary
from ..netlist.netlist import Netlist
from ..parallel import parallel_map
from .cover import CoverError, CoveredCell, TreeCover, cover_tree
from .trees import Tree, decompose_into_trees

__all__ = ["CamouflagedMapping", "camouflage_map"]


def _cover_one_tree(
    tree: Tree,
    netlist: Netlist,
    select_nets: Sequence[str],
    camo_library: CamouflageLibrary,
    max_depth: int,
    padding_net: Optional[str],
) -> TreeCover:
    """Cover a single tree (top-level so worker processes can pickle it)."""
    return cover_tree(
        netlist,
        tree,
        select_nets,
        camo_library,
        max_depth=max_depth,
        padding_net=padding_net,
    )


@dataclass
class CamouflagedMapping:
    """The camouflaged implementation produced by Phase III."""

    netlist: Netlist
    camo_library: CamouflageLibrary
    select_order: Tuple[str, ...]
    #: instance name -> (ordered select nets local to that instance)
    instance_selects: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: instance name -> {local select assignment -> configured function}
    instance_configs: Dict[str, Dict[Tuple[int, ...], TruthTable]] = field(default_factory=dict)
    tree_covers: List[TreeCover] = field(default_factory=list)

    # -------------------------------------------------------------- #
    # Area
    # -------------------------------------------------------------- #
    def area(self) -> float:
        """Total area of the camouflaged netlist in gate equivalents."""
        return self.netlist.area()

    def num_camouflaged_cells(self) -> int:
        """Number of camouflaged cell instances."""
        return len(self.instance_configs)

    # -------------------------------------------------------------- #
    # Designer-side configuration
    # -------------------------------------------------------------- #
    def configuration_for_select(self, select_word: int) -> CircuitConfiguration:
        """Return the cell configuration realising the given select word.

        Bit ``k`` of ``select_word`` is the value of ``select_order[k]``
        (the merged design's ``sel[k]`` input).
        """
        limit = max(1, 1 << len(self.select_order))
        if not 0 <= select_word < limit:
            raise ValueError("select word out of range")
        select_value = {
            net: (select_word >> index) & 1 for index, net in enumerate(self.select_order)
        }
        configuration = CircuitConfiguration()
        for instance_name, by_select in self.instance_configs.items():
            local = tuple(
                select_value[net] for net in self.instance_selects[instance_name]
            )
            configuration.set(instance_name, by_select[local])
        return configuration

    def realised_lookup_tables(self, jobs: int = 1) -> List[List[int]]:
        """Lookup table realised by every select configuration (packed sweep).

        Entry ``s`` equals ``extract_function(netlist, cell_functions=
        configuration_for_select(s).as_cell_functions()).lookup_table()`` but
        the whole select space is swept word-parallel — one pass when the
        combined width fits, select-dimension shards over the worker pool
        (``jobs``) otherwise.  Tables are identical for every ``jobs`` value.
        """
        from ..camo.config import sweep_configurations

        return sweep_configurations(
            self.netlist,
            self.select_order,
            self.instance_selects,
            self.instance_configs,
            jobs=jobs,
        )

    def plausible_functions_of(self, instance_name: str) -> Tuple[TruthTable, ...]:
        """Plausible functions (adversary view) of a camouflaged instance."""
        instance = self.netlist.instance(instance_name)
        return tuple(self.camo_library[instance.cell].plausible)

    def camouflaged_instances(self) -> List[str]:
        """Names of all camouflaged instances."""
        return list(self.instance_configs)


def camouflage_map(
    synthesized: Netlist,
    select_nets: Sequence[str],
    camo_library: Optional[CamouflageLibrary] = None,
    max_depth: int = 2,
    name: Optional[str] = None,
    jobs: int = 1,
) -> CamouflagedMapping:
    """Map a synthesised merged netlist onto camouflaged cells (Phase III).

    Tree covers are independent of one another, so with ``jobs > 1`` the
    per-tree dynamic programming fans out over the shared
    :mod:`repro.parallel` worker pool; results are assembled in tree order,
    so the mapping is identical for every ``jobs`` value.
    """
    camo_library = camo_library or default_camouflage_library(synthesized.library)
    select_set = set(select_nets)
    missing = [net for net in select_nets if net not in synthesized.primary_inputs]
    if missing:
        raise ValueError(f"select nets {missing} are not primary inputs of the netlist")

    data_inputs = [net for net in synthesized.primary_inputs if net not in select_set]
    padding_net = data_inputs[0] if data_inputs else None

    trees = decompose_into_trees(synthesized)
    covers: List[TreeCover] = parallel_map(
        partial(
            _cover_one_tree,
            netlist=synthesized,
            select_nets=list(select_nets),
            camo_library=camo_library,
            max_depth=max_depth,
            padding_net=padding_net,
        ),
        trees,
        jobs=jobs,
    )

    mapped_library = camo_library.as_cell_library(include=synthesized.library)
    result = Netlist(name or f"{synthesized.name}_camo", mapped_library)
    for net in data_inputs:
        result.add_input(net)

    mapping = CamouflagedMapping(
        netlist=result,
        camo_library=camo_library,
        select_order=tuple(select_nets),
        tree_covers=covers,
    )

    counter = 0
    for cover in covers:
        for covered in cover.cells:
            counter += 1
            instance = result.add_instance(
                covered.cell_name,
                list(covered.pin_nets),
                output=covered.output_net,
                name=f"camo_{counter}_{covered.cell_name.lower()}",
                attributes={
                    "data_leaves": covered.data_leaves,
                    "select_leaves": covered.select_leaves,
                },
            )
            mapping.instance_selects[instance.name] = covered.select_leaves
            mapping.instance_configs[instance.name] = dict(covered.config_by_select)

    for net in synthesized.primary_outputs:
        result.add_output(net)
    return mapping

"""Dynamic-programming tree covering with camouflaged cells (Alg. 1).

For every net of a fanout-free tree the cover considers all subtrees of
bounded depth rooted at that net, abstracts the select signals appearing in
the subtree (ABSFUNC), asks the camouflage library for the cheapest cell
whose plausible functions contain every required function, and keeps the
minimum-cost cover.  The chosen covers are then stitched together from the
tree root downwards.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..camo.library import CamouflageLibrary, CellMatch
from ..logic.truthtable import TruthTable
from ..netlist.netlist import Instance, Netlist
from .absfunc import AbstractedFunctions, abstract_select_functions
from .trees import Tree

__all__ = ["CoveredCell", "TreeCover", "CoverError", "cover_tree"]


class CoverError(Exception):
    """Raised when a tree cannot be covered with the camouflage library."""


@dataclass
class CoveredCell:
    """One camouflaged cell instance chosen by the cover."""

    output_net: str
    cell_name: str
    pin_nets: Tuple[str, ...]
    data_leaves: Tuple[str, ...]
    select_leaves: Tuple[str, ...]
    #: Configured function (over the cell pins) for every assignment of the
    #: local select leaves.
    config_by_select: Dict[Tuple[int, ...], TruthTable]
    area: float

    def nominal_config(self) -> TruthTable:
        """The configuration for the all-zero select assignment."""
        zero = tuple(0 for _ in self.select_leaves)
        return self.config_by_select[zero]


@dataclass
class TreeCover:
    """The cover of one tree."""

    tree: Tree
    cells: List[CoveredCell] = field(default_factory=list)
    cost: float = 0.0


@dataclass
class _Choice:
    """Best DP entry for one in-tree net."""

    cost: float
    instances: Tuple[Instance, ...]
    abstracted: AbstractedFunctions
    match: CellMatch


def cover_tree(
    netlist: Netlist,
    tree: Tree,
    select_nets: Sequence[str],
    library: CamouflageLibrary,
    max_depth: int = 2,
    max_candidates_per_node: int = 64,
    padding_net: Optional[str] = None,
) -> TreeCover:
    """Cover one fanout-free tree with camouflaged cells (Alg. 1)."""
    if max_depth < 1:
        raise ValueError("max_depth must be at least 1")
    select_set = set(select_nets)
    in_tree: Dict[str, Instance] = {inst.output: inst for inst in tree.instances}
    max_pins = library.max_pins()
    best: Dict[str, _Choice] = {}

    for instance in tree.instances:
        choices: List[_Choice] = []
        for subtree in _enumerate_subtrees(instance, in_tree, max_depth):
            if len(choices) >= max_candidates_per_node:
                break
            leaf_nets = _subtree_leaves(subtree)
            data_count = sum(1 for net in leaf_nets if net not in select_set)
            if data_count > max_pins:
                continue
            abstracted = abstract_select_functions(
                netlist, subtree, instance.output, leaf_nets, select_nets
            )
            required = abstracted.required_functions()
            match = library.best_match(required)
            if match is None:
                continue
            leaf_cost = 0.0
            for net in abstracted.data_leaves:
                if net in best:
                    leaf_cost += best[net].cost
                elif net in in_tree:
                    # A data leaf driven inside the tree but not yet covered
                    # cannot happen with topologically ordered instances.
                    raise CoverError(
                        f"internal error: leaf {net!r} has no cover yet"
                    )
            choices.append(
                _Choice(
                    cost=match.cost + leaf_cost,
                    instances=subtree,
                    abstracted=abstracted,
                    match=match,
                )
            )
        if not choices:
            raise CoverError(
                f"no camouflaged cell covers instance {instance.name!r} "
                f"({instance.cell}); the library is too small"
            )
        best[instance.output] = min(choices, key=lambda choice: choice.cost)

    return _stitch_cover(tree, best, in_tree, padding_net)


def _enumerate_subtrees(
    root: Instance,
    in_tree: Dict[str, Instance],
    max_depth: int,
) -> List[Tuple[Instance, ...]]:
    """Enumerate connected subtrees rooted at ``root`` with bounded depth."""

    def _expand(instance: Instance, depth: int) -> List[Tuple[Instance, ...]]:
        options_per_fanin: List[List[Tuple[Instance, ...]]] = []
        for net in instance.inputs:
            options: List[Tuple[Instance, ...]] = [()]
            driver = in_tree.get(net)
            if driver is not None and depth > 1:
                options.extend(_expand(driver, depth - 1))
            options_per_fanin.append(options)
        subtrees: List[Tuple[Instance, ...]] = []
        for combo in itertools.product(*options_per_fanin):
            included: List[Instance] = [instance]
            seen: Set[str] = {instance.name}
            for branch in combo:
                for inst in branch:
                    if inst.name not in seen:
                        seen.add(inst.name)
                        included.append(inst)
            subtrees.append(tuple(included))
        return subtrees

    # Prefer larger subtrees first so equal-cost ties go to covers that absorb
    # more select logic.
    subtrees = _expand(root, max_depth)
    subtrees.sort(key=len, reverse=True)
    return subtrees


def _subtree_leaves(subtree: Sequence[Instance]) -> List[str]:
    """Ordered leaf nets of a subtree (inputs not driven within the subtree)."""
    produced = {instance.output for instance in subtree}
    leaves: List[str] = []
    seen: Set[str] = set()
    for instance in subtree:
        for net in instance.inputs:
            if net in produced or net in seen:
                continue
            seen.add(net)
            leaves.append(net)
    return leaves


def _stitch_cover(
    tree: Tree,
    best: Dict[str, _Choice],
    in_tree: Dict[str, Instance],
    padding_net: Optional[str],
) -> TreeCover:
    """Walk from the root selecting the chosen covers and emitting cells."""
    cover = TreeCover(tree=tree)
    pending = [tree.root_net]
    emitted: Set[str] = set()
    while pending:
        net = pending.pop()
        if net in emitted:
            continue
        emitted.add(net)
        choice = best.get(net)
        if choice is None:
            raise CoverError(f"net {net!r} has no cover (is it really in the tree?)")
        cell = choice.match.cell
        pin_nets = _assign_pins(choice, cell.num_inputs, padding_net)
        config = {
            assignment: choice.match.realisations[function]
            for assignment, function in choice.abstracted.by_select.items()
        }
        cover.cells.append(
            CoveredCell(
                output_net=net,
                cell_name=cell.name,
                pin_nets=pin_nets,
                data_leaves=choice.abstracted.data_leaves,
                select_leaves=choice.abstracted.select_leaves,
                config_by_select=config,
                area=cell.area,
            )
        )
        cover.cost += cell.area
        for leaf in choice.abstracted.data_leaves:
            if leaf in in_tree:
                pending.append(leaf)
    return cover


def _assign_pins(
    choice: _Choice, num_pins: int, padding_net: Optional[str]
) -> Tuple[str, ...]:
    """Connect data leaves to their matched pins; pad the unused pins."""
    data_leaves = choice.abstracted.data_leaves
    pin_nets: List[Optional[str]] = [None] * num_pins
    for leaf_index, pin in enumerate(choice.match.pin_of_leaf):
        pin_nets[pin] = data_leaves[leaf_index]
    filler = padding_net
    if filler is None:
        filler = data_leaves[0] if data_leaves else None
    if filler is None:
        raise CoverError(
            "cannot pad unused pins: no data leaves and no padding net provided"
        )
    default = data_leaves[0] if data_leaves else filler
    return tuple(net if net is not None else default for net in pin_nets)

"""Forest decomposition of a mapped netlist into fanout-free trees.

As in classical tree-covering technology mapping (DAGON), the circuit graph
is split at every multi-fanout net: each primary output or multi-fanout net
becomes the root of a tree, and the tree contains every instance that feeds
the root exclusively through single-fanout nets.  Tree leaves are primary
inputs (including the select inputs that Phase III will abstract away),
constants, and the roots of other trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..netlist.netlist import CONST0_NET, CONST1_NET, Instance, Netlist

__all__ = ["Tree", "decompose_into_trees"]


@dataclass
class Tree:
    """A fanout-free subcircuit with a single output net."""

    root_net: str
    instances: List[Instance] = field(default_factory=list)
    leaf_nets: List[str] = field(default_factory=list)

    @property
    def instance_names(self) -> Set[str]:
        """Names of the instances belonging to the tree."""
        return {instance.name for instance in self.instances}

    def driver_within(self, net: str) -> Optional[Instance]:
        """Return the in-tree instance driving ``net`` (None for leaves)."""
        for instance in self.instances:
            if instance.output == net:
                return instance
        return None

    def __repr__(self) -> str:
        return (
            f"Tree(root={self.root_net!r}, instances={len(self.instances)}, "
            f"leaves={len(self.leaf_nets)})"
        )


def decompose_into_trees(netlist: Netlist) -> List[Tree]:
    """Split the netlist into fanout-free trees.

    Trees are returned in topological order of their root nets (a tree's
    leaves are either primary inputs, constants, or roots of earlier trees),
    which is convenient for mappers that need leaf information to exist
    before a tree is processed.
    """
    fanout = netlist.fanout_counts()
    root_nets: List[str] = []
    seen_roots: Set[str] = set()
    for instance in netlist.topological_order():
        net = instance.output
        is_root = net in netlist.primary_outputs or fanout.get(net, 0) > 1
        if is_root and net not in seen_roots:
            seen_roots.add(net)
            root_nets.append(net)
    # Any instance whose output has zero fanout and is not a primary output is
    # dangling; treat it as a root as well so nothing is silently dropped.
    for instance in netlist.topological_order():
        net = instance.output
        if fanout.get(net, 0) == 0 and net not in netlist.primary_outputs and net not in seen_roots:
            seen_roots.add(net)
            root_nets.append(net)

    trees: List[Tree] = []
    for root in root_nets:
        trees.append(_build_tree(netlist, root, seen_roots))
    return trees


def _build_tree(netlist: Netlist, root_net: str, root_set: Set[str]) -> Tree:
    tree = Tree(root_net=root_net)
    leaf_order: List[str] = []
    leaf_seen: Set[str] = set()
    collected: List[Instance] = []

    def _visit(net: str, is_root: bool) -> None:
        driver = netlist.driver_of(net)
        stop = (
            driver is None
            or net in (CONST0_NET, CONST1_NET)
            or (not is_root and net in root_set)
        )
        if stop:
            if net not in leaf_seen:
                leaf_seen.add(net)
                leaf_order.append(net)
            return
        for fanin in driver.inputs:
            _visit(fanin, False)
        collected.append(driver)

    _visit(root_net, True)
    tree.instances = collected  # already in topological (post-order) order
    tree.leaf_nets = leaf_order
    return tree

"""Phase III: camouflage technology mapping (tree covering, Alg. 1)."""

from .absfunc import AbstractedFunctions, abstract_select_functions, subtree_output_function
from .cover import CoverError, CoveredCell, TreeCover, cover_tree
from .mapper import CamouflagedMapping, camouflage_map
from .trees import Tree, decompose_into_trees

__all__ = [
    "Tree",
    "decompose_into_trees",
    "AbstractedFunctions",
    "abstract_select_functions",
    "subtree_output_function",
    "CoveredCell",
    "TreeCover",
    "CoverError",
    "cover_tree",
    "CamouflagedMapping",
    "camouflage_map",
]

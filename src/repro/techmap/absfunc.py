"""ABSFUNC: abstracting select signals out of a subtree (Alg. 1, line 6).

Given a candidate subtree of the synthesised merged circuit, ABSFUNC
computes the *set* of Boolean functions — over the subtree's non-select
leaves — that the subtree's output can take for every possible assignment of
the select signals appearing among its leaves.  A camouflaged cell may cover
the subtree only if its plausible functions contain all of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..logic.truthtable import TruthTable
from ..netlist.netlist import CONST0_NET, CONST1_NET, Instance, Netlist

__all__ = ["AbstractedFunctions", "abstract_select_functions", "subtree_output_function"]

#: Structural subtree descriptor -> packed bits of the output function.  The
#: camouflage cover enumerates many overlapping candidate subtrees per
#: instance and re-runs on every mapping call; structurally identical
#: subtrees (same cell functions, same wiring relative to the leaf order)
#: always produce the same output table, so the computation is shared
#: process-wide.  Bounded: cleared wholesale when full.
_SUBTREE_CACHE: dict = {}
_SUBTREE_CACHE_LIMIT = 1 << 15


def clear_subtree_function_cache() -> None:
    """Drop all memoised subtree output functions (mainly for tests)."""
    _SUBTREE_CACHE.clear()


@dataclass(frozen=True)
class AbstractedFunctions:
    """The result of abstracting a subtree's select leaves.

    ``data_leaves`` is the ordered list of non-select leaf nets (the variable
    order of every function in ``by_select``); ``select_leaves`` is the
    ordered list of abstracted select nets.  ``by_select[assignment]`` is the
    function — over the data leaves — realised when the select leaves take
    the given 0/1 values (``assignment[i]`` is the value of
    ``select_leaves[i]``).
    """

    data_leaves: Tuple[str, ...]
    select_leaves: Tuple[str, ...]
    by_select: Dict[Tuple[int, ...], TruthTable]

    def required_functions(self) -> List[TruthTable]:
        """The distinct functions a covering cell must be able to implement."""
        return list(dict.fromkeys(self.by_select.values()))


def subtree_output_function(
    netlist: Netlist,
    instances: Sequence[Instance],
    output_net: str,
    leaf_order: Sequence[str],
) -> TruthTable:
    """Compute the function of ``output_net`` over ``leaf_order``.

    ``instances`` must contain every instance of the subtree (in any order);
    nets outside the subtree must appear in ``leaf_order``.
    """
    num_vars = len(leaf_order)
    # Slot assignment: leaves take 0..num_vars-1, the constant nets take the
    # sentinel slots -1/-2 (unless they are themselves leaves), and every
    # resolved instance output takes the next fresh slot.  The instances are
    # scheduled with the same iterative resolution the evaluation uses, so
    # the structural descriptor determines the output table exactly.
    position: Dict[str, int] = {net: index for index, net in enumerate(leaf_order)}
    position.setdefault(CONST0_NET, -1)
    position.setdefault(CONST1_NET, -2)

    remaining = list(instances)
    schedule: List[Instance] = []
    descriptor: List[Tuple] = []
    next_slot = num_vars
    progress = True
    while remaining and progress:
        progress = False
        still: List[Instance] = []
        for instance in remaining:
            if all(net in position for net in instance.inputs):
                cell = netlist.library[instance.cell]
                descriptor.append(
                    (
                        cell.function.num_vars,
                        cell.function.bits,
                        tuple(position[net] for net in instance.inputs),
                    )
                )
                schedule.append(instance)
                position[instance.output] = next_slot
                next_slot += 1
                progress = True
            else:
                still.append(instance)
        remaining = still
    if remaining:
        blocked = ", ".join(instance.name for instance in remaining)
        raise ValueError(f"subtree is not closed over its leaves (blocked: {blocked})")
    output_slot = position.get(output_net)
    if output_slot is None:
        raise ValueError(f"output net {output_net!r} is not produced by the subtree")

    key = (num_vars, tuple(descriptor), output_slot)
    bits = _SUBTREE_CACHE.get(key)
    if bits is not None:
        return TruthTable(num_vars, bits)

    tables: Dict[str, TruthTable] = {
        net: TruthTable.variable(index, num_vars) for index, net in enumerate(leaf_order)
    }
    tables.setdefault(CONST0_NET, TruthTable.constant(num_vars, False))
    tables.setdefault(CONST1_NET, TruthTable.constant(num_vars, True))
    for instance in schedule:
        cell = netlist.library[instance.cell]
        operands = [tables[net] for net in instance.inputs]
        tables[instance.output] = cell.function.compose(operands)

    result = tables[output_net]
    if len(_SUBTREE_CACHE) >= _SUBTREE_CACHE_LIMIT:
        _SUBTREE_CACHE.clear()
    _SUBTREE_CACHE[key] = result.bits
    return result


def abstract_select_functions(
    netlist: Netlist,
    instances: Sequence[Instance],
    output_net: str,
    leaf_nets: Sequence[str],
    select_nets: Sequence[str],
) -> AbstractedFunctions:
    """Abstract the select leaves of a subtree (the ABSFUNC of Alg. 1)."""
    select_set = set(select_nets)
    data_leaves = tuple(net for net in leaf_nets if net not in select_set)
    select_leaves = tuple(net for net in leaf_nets if net in select_set)

    # Order variables data-first, selects last, so select cofactors are block
    # extractions on the packed truth table.
    ordered = list(data_leaves) + list(select_leaves)
    full = subtree_output_function(netlist, instances, output_net, ordered)

    num_data = len(data_leaves)
    num_select = len(select_leaves)
    rows_per_block = 1 << num_data
    block_mask = (1 << rows_per_block) - 1

    by_select: Dict[Tuple[int, ...], TruthTable] = {}
    for assignment_index in range(1 << num_select):
        assignment = tuple(
            (assignment_index >> position) & 1 for position in range(num_select)
        )
        block = (full.bits >> (assignment_index * rows_per_block)) & block_mask
        by_select[assignment] = TruthTable(num_data, block)
    return AbstractedFunctions(
        data_leaves=data_leaves,
        select_leaves=select_leaves,
        by_select=by_select,
    )

"""Configurations of camouflaged instances.

A *configuration* fixes, for every camouflaged instance of a netlist, which
of its plausible functions the doping actually implements.  The designer
knows the configuration; the adversary only knows the plausible family per
instance.  Configurations are consumed by
:func:`repro.netlist.simulate.extract_function` via its ``cell_functions``
override, which is how the designer-side validation and the attack analyses
evaluate a camouflaged netlist.

:func:`sweep_configurations` evaluates the *entire* select space in one
packed word-parallel pass (patterns range over data inputs × select words
simultaneously), which is how the designer-side plausibility check verifies
every viable function without re-simulating the netlist per configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..logic.truthtable import TruthTable
from ..netlist.netlist import Netlist

__all__ = ["CircuitConfiguration", "sweep_configurations"]


@dataclass
class CircuitConfiguration:
    """A mapping from camouflaged instance names to their configured functions."""

    functions: Dict[str, TruthTable] = field(default_factory=dict)

    def set(self, instance_name: str, function: TruthTable) -> None:
        """Fix the configured function of one instance."""
        self.functions[instance_name] = function

    def get(self, instance_name: str) -> Optional[TruthTable]:
        """Return the configured function of an instance (None if unconstrained)."""
        return self.functions.get(instance_name)

    def __len__(self) -> int:
        return len(self.functions)

    def __iter__(self) -> Iterator[str]:
        return iter(self.functions)

    def as_cell_functions(self) -> Mapping[str, TruthTable]:
        """Return the mapping consumed by the netlist simulator."""
        return dict(self.functions)

    def validate_against(self, netlist: Netlist) -> None:
        """Check that every configured instance exists and arities match."""
        for name, function in self.functions.items():
            instance = netlist.instance(name)
            cell = netlist.library[instance.cell]
            if cell.num_inputs != function.num_vars:
                raise ValueError(
                    f"configuration of {name!r} has {function.num_vars} variables "
                    f"but cell {cell.name} has {cell.num_inputs} pins"
                )

    def merged_with(self, other: "CircuitConfiguration") -> "CircuitConfiguration":
        """Return a configuration combining both (``other`` wins on conflict)."""
        combined = dict(self.functions)
        combined.update(other.functions)
        return CircuitConfiguration(combined)


def sweep_configurations(
    netlist: Netlist,
    select_order: Sequence[str],
    instance_selects: Mapping[str, Sequence[str]],
    instance_configs: Mapping[str, Mapping[Tuple[int, ...], TruthTable]],
    jobs: int = 1,
) -> List[List[int]]:
    """Realised lookup tables of every select configuration, packed.

    Entry ``s`` of the result is the word-level lookup table the netlist
    implements when every camouflaged instance is configured for select word
    ``s`` — the same tables per-configuration exhaustive extraction yields.
    Narrow combined spaces are one packed simulation pass over the
    (data × select) pattern product; wider select spaces are sharded along
    the select dimension and fanned over the worker pool (``jobs``), with
    identical tables for every ``jobs`` value.
    """
    from ..sim.engine import sweep_select_space

    return sweep_select_space(
        netlist, select_order, instance_selects, instance_configs, jobs=jobs
    )

"""Configurations of camouflaged instances.

A *configuration* fixes, for every camouflaged instance of a netlist, which
of its plausible functions the doping actually implements.  The designer
knows the configuration; the adversary only knows the plausible family per
instance.  Configurations are consumed by
:func:`repro.netlist.simulate.extract_function` via its ``cell_functions``
override, which is how the designer-side validation and the attack analyses
evaluate a camouflaged netlist.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional

from ..logic.truthtable import TruthTable
from ..netlist.netlist import Netlist

__all__ = ["CircuitConfiguration"]


@dataclass
class CircuitConfiguration:
    """A mapping from camouflaged instance names to their configured functions."""

    functions: Dict[str, TruthTable] = field(default_factory=dict)

    def set(self, instance_name: str, function: TruthTable) -> None:
        """Fix the configured function of one instance."""
        self.functions[instance_name] = function

    def get(self, instance_name: str) -> Optional[TruthTable]:
        """Return the configured function of an instance (None if unconstrained)."""
        return self.functions.get(instance_name)

    def __len__(self) -> int:
        return len(self.functions)

    def __iter__(self) -> Iterator[str]:
        return iter(self.functions)

    def as_cell_functions(self) -> Mapping[str, TruthTable]:
        """Return the mapping consumed by the netlist simulator."""
        return dict(self.functions)

    def validate_against(self, netlist: Netlist) -> None:
        """Check that every configured instance exists and arities match."""
        for name, function in self.functions.items():
            instance = netlist.instance(name)
            cell = netlist.library[instance.cell]
            if cell.num_inputs != function.num_vars:
                raise ValueError(
                    f"configuration of {name!r} has {function.num_vars} variables "
                    f"but cell {cell.name} has {cell.num_inputs} pins"
                )

    def merged_with(self, other: "CircuitConfiguration") -> "CircuitConfiguration":
        """Return a configuration combining both (``other`` wins on conflict)."""
        combined = dict(self.functions)
        combined.update(other.functions)
        return CircuitConfiguration(combined)

"""The camouflage cell library and function-set matching.

A :class:`CamouflageLibrary` holds the camouflaged variants of the standard
cells and answers the central query of the technology mapper (Alg. 1, line
8): *given a set of required functions over a handful of leaf signals, which
camouflaged cell can implement all of them, and with which leaf-to-pin
assignment?*
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..logic.truthtable import TruthTable
from ..netlist.library import CellLibrary, CellType, standard_cell_library
from .cells import CAMO_PREFIX, CamouflagedCellType, camouflage_cell

__all__ = ["CellMatch", "CamouflageLibrary", "default_camouflage_library"]

#: Cells that are not worth camouflaging (a buffer's cofactors are trivial).
_EXCLUDED_BASE_CELLS = ("BUF",)


@dataclass(frozen=True)
class CellMatch:
    """A successful match of a required function set onto a camouflaged cell.

    ``pin_of_leaf[i]`` is the cell pin index that leaf ``i`` (the i-th
    variable of the required functions) must connect to.  ``realisations``
    maps each required function (as given) to the plausible function of the
    cell — expressed over the cell pins — that implements it.
    """

    cell: CamouflagedCellType
    pin_of_leaf: Tuple[int, ...]
    realisations: Dict[TruthTable, TruthTable]
    cost: float


class CamouflageLibrary:
    """A collection of camouflaged cells with matching queries."""

    def __init__(self, cells: Iterable[CamouflagedCellType], name: str = "camouflage"):
        self.name = name
        self._cells: Dict[str, CamouflagedCellType] = {}
        for cell in cells:
            if cell.name in self._cells:
                raise ValueError(f"duplicate camouflaged cell {cell.name!r}")
            self._cells[cell.name] = cell

    # -------------------------------------------------------------- #
    # Container protocol
    # -------------------------------------------------------------- #
    def cells(self) -> List[CamouflagedCellType]:
        """All camouflaged cells in insertion order."""
        return list(self._cells.values())

    def __getitem__(self, name: str) -> CamouflagedCellType:
        try:
            return self._cells[name]
        except KeyError as exc:
            raise KeyError(f"no camouflaged cell named {name!r}") from exc

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __len__(self) -> int:
        return len(self._cells)

    def max_pins(self) -> int:
        """Largest pin count over all camouflaged cells."""
        return max(cell.num_inputs for cell in self._cells.values())

    def as_cell_library(self, include: Optional[CellLibrary] = None) -> CellLibrary:
        """Return a :class:`CellLibrary` of look-alike cell types.

        When ``include`` is given, its cells are copied in as well (mapped
        netlists may mix camouflaged and ordinary cells).
        """
        cells: List[CellType] = []
        seen = set()
        if include is not None:
            for cell in include.cells():
                cells.append(cell)
                seen.add(cell.name)
        for camo in self._cells.values():
            if camo.name not in seen:
                cells.append(camo.as_cell_type())
        return CellLibrary(f"{self.name}_cells", cells)

    # -------------------------------------------------------------- #
    # Matching
    # -------------------------------------------------------------- #
    def match(
        self,
        required: Sequence[TruthTable],
        max_candidates: int = 0,
    ) -> List[CellMatch]:
        """Find camouflaged cells that can implement every required function.

        The required functions must all share the same (small) number of
        variables — the subtree leaves, in a fixed order.  Matches are
        returned sorted by cell area; ``max_candidates`` limits the list
        (0 means unlimited).
        """
        if not required:
            raise ValueError("at least one required function is needed")
        num_leaves = required[0].num_vars
        for function in required:
            if function.num_vars != num_leaves:
                raise ValueError("required functions must share the same leaf variables")
        unique_required = list(dict.fromkeys(required))

        matches: List[CellMatch] = []
        for cell in sorted(self._cells.values(), key=lambda c: (c.area, c.name)):
            if cell.num_inputs < num_leaves:
                continue
            match = self._match_cell(cell, unique_required, num_leaves)
            if match is not None:
                matches.append(match)
                if max_candidates and len(matches) >= max_candidates:
                    break
        return matches

    def best_match(self, required: Sequence[TruthTable]) -> Optional[CellMatch]:
        """Return the cheapest matching cell, or None when nothing matches."""
        matches = self.match(required, max_candidates=1)
        return matches[0] if matches else None

    def _match_cell(
        self,
        cell: CamouflagedCellType,
        required: List[TruthTable],
        num_leaves: int,
    ) -> Optional[CellMatch]:
        pins = cell.num_inputs
        plausible = cell.plausible
        for chosen_pins in permutations(range(pins), num_leaves):
            realisations: Dict[TruthTable, TruthTable] = {}
            feasible = True
            for function in required:
                lifted = _lift_to_pins(function, chosen_pins, pins)
                if lifted not in plausible:
                    feasible = False
                    break
                realisations[function] = lifted
            if feasible:
                return CellMatch(
                    cell=cell,
                    pin_of_leaf=tuple(chosen_pins),
                    realisations=realisations,
                    cost=cell.area,
                )
        return None


def _lift_to_pins(
    function: TruthTable, pin_of_leaf: Sequence[int], num_pins: int
) -> TruthTable:
    """Express a leaf-variable function over the cell-pin variable space."""
    substitutions = [
        TruthTable.variable(pin_of_leaf[leaf], num_pins)
        for leaf in range(function.num_vars)
    ]
    if function.num_vars == 0:
        return TruthTable.constant(num_pins, bool(function.bits & 1))
    return function.compose(substitutions)


def default_camouflage_library(
    base_library: Optional[CellLibrary] = None,
    area_overhead: float = 0.0,
) -> CamouflageLibrary:
    """Build the camouflage library from (by default) the standard cells."""
    base_library = base_library or standard_cell_library()
    cells = [
        camouflage_cell(cell, area_overhead=area_overhead)
        for cell in base_library.cells()
        if cell.name not in _EXCLUDED_BASE_CELLS
    ]
    return CamouflageLibrary(cells)

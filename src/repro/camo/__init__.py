"""Camouflaged cells: plausible-function families, library, configurations."""

from .cells import CamouflagedCellType, camouflage_cell, plausible_family
from .config import CircuitConfiguration
from .library import CamouflageLibrary, CellMatch, default_camouflage_library

__all__ = [
    "plausible_family",
    "CamouflagedCellType",
    "camouflage_cell",
    "CamouflageLibrary",
    "CellMatch",
    "default_camouflage_library",
    "CircuitConfiguration",
]

"""Camouflaged (dopant-programmable) look-alike cells.

Following Section II of the paper, a camouflaged cell is created from a
nominal library cell by modifying transistor doping so that individual
transistors are permanently ON or OFF.  Functionally this makes the cell
implement a *cofactor* of its nominal function with respect to any subset of
its inputs (the inputs remain physically connected, so the cell is a perfect
look-alike of the nominal cell).

The *plausible functions* of a camouflaged cell — what an adversary who has
identified the look-alike cell must consider possible — are therefore the
nominal function together with every cofactor under every partial input
assignment.  Fig. 1b of the paper lists this family for a 2-input NAND:
``{NAND(A,B), ~A, ~B, 0, 1}``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence, Tuple

from ..logic.truthtable import TruthTable
from ..netlist.library import CellType

__all__ = ["plausible_family", "CamouflagedCellType", "camouflage_cell"]

#: Prefix used for camouflaged cell names in netlists ("CAMO_NAND2", ...).
CAMO_PREFIX = "CAMO_"


def plausible_family(function: TruthTable) -> FrozenSet[TruthTable]:
    """Return the plausible-function family of a camouflaged cell.

    The family contains the nominal function and every cofactor reachable by
    fixing any subset of the inputs to constants (all expressed over the full
    pin count of the cell, so membership tests are straightforward).
    """
    return frozenset(function.all_partial_cofactors())


@dataclass(frozen=True)
class CamouflagedCellType:
    """A look-alike cell with its plausible-function family."""

    name: str
    base: CellType
    plausible: FrozenSet[TruthTable]
    area: float

    @property
    def num_inputs(self) -> int:
        """Number of (physical) input pins — identical to the base cell."""
        return self.base.num_inputs

    @property
    def input_names(self) -> Tuple[str, ...]:
        """Pin names, identical to the base cell."""
        return self.base.input_names

    @property
    def nominal_function(self) -> TruthTable:
        """The nominal (undoped) function — what the cell looks like."""
        return self.base.function

    def can_implement(self, function: TruthTable) -> bool:
        """Return True if the cell can be doped to implement ``function``.

        ``function`` must be expressed over the cell's pin variables (same
        arity).
        """
        if function.num_vars != self.num_inputs:
            return False
        return function in self.plausible

    def can_implement_all(self, functions: Sequence[TruthTable]) -> bool:
        """Return True if every function in the set is plausible for this cell."""
        return all(self.can_implement(function) for function in functions)

    def as_cell_type(self) -> CellType:
        """Return the look-alike :class:`CellType` used in mapped netlists.

        The returned cell carries the *nominal* function (which is what an
        adversary imaging the die would record); the true configured function
        of each instance is tracked separately by the technology mapper.
        """
        return CellType(
            name=self.name,
            input_names=self.base.input_names,
            function=self.base.function,
            area=self.area,
            description=f"camouflaged {self.base.name}",
        )

    def __repr__(self) -> str:
        return (
            f"CamouflagedCellType(name={self.name!r}, base={self.base.name!r}, "
            f"plausible={len(self.plausible)}, area={self.area})"
        )


def camouflage_cell(
    base: CellType,
    area_overhead: float = 0.0,
    name: Optional[str] = None,
) -> CamouflagedCellType:
    """Create the camouflaged variant of a standard cell.

    ``area_overhead`` is a relative overhead (0.0 means the camouflaged cell
    has exactly the base area, which matches the look-alike assumption of the
    paper; a positive value models more conservative camouflage styles).
    """
    if area_overhead < 0:
        raise ValueError("area_overhead must be non-negative")
    return CamouflagedCellType(
        name=name or f"{CAMO_PREFIX}{base.name}",
        base=base,
        plausible=plausible_family(base.function),
        area=base.area * (1.0 + area_overhead),
    )

"""Unified run telemetry: one mergeable record behind every stats surface.

Historically each layer grew its own ad-hoc stats dict: the SAT solver's
``stats()``, the GA evaluation cache's ``cache_stats()``, the decamouflage
attack's ``prefilter_stats()`` and the per-generation ``GenerationStats``
rows.  They were near-identical in spirit (flat name -> number counters) but
incompatible in shape, so nothing downstream could aggregate across layers.

:class:`RunTelemetry` is the common record.  It is a label plus a set of
named *scopes*, each scope a flat mapping of counter name to number.  The
operations every consumer needs are provided once:

* ``count`` / ``record`` / ``get`` for incremental accumulation,
* ``merged`` for combining records (counters add, scopes union),
* ``to_dict`` / ``from_dict`` / ``to_json`` / ``from_json`` for persistence
  in campaign state payloads and ``BENCH_*.json`` artifacts,
* ``from_solver_stats`` / ``from_cache_stats`` / ``from_prefilter_stats`` /
  ``from_ga_history`` adapters that absorb the legacy dicts.

The report rows in :mod:`repro.flow.report` are thin views over this record,
and the strategy layers (pass scheduling, windowing) read their measurement
feedback from it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

__all__ = [
    "RunTelemetry",
    "window_hardness_from_payloads",
]

Number = float


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


@dataclass
class RunTelemetry:
    """A labelled set of named counter scopes with JSON round-trip.

    ``scopes`` maps a scope name (``"solver"``, ``"cache"``, ``"synth"``,
    ``"window"``, ...) to a flat ``counter name -> number`` mapping.  Merging
    two records sums counters that appear in both, so a campaign-level record
    is simply the merge of its per-job records.
    """

    label: str = ""
    scopes: Dict[str, Dict[str, Number]] = field(default_factory=dict)

    # -- accumulation -----------------------------------------------------

    def scope(self, name: str) -> Dict[str, Number]:
        """Return the (mutable) counter mapping for ``name``, creating it."""
        return self.scopes.setdefault(name, {})

    def count(self, scope: str, key: str, amount: Number = 1) -> None:
        """Add ``amount`` to ``scope``/``key`` (creating it at zero)."""
        counters = self.scope(scope)
        counters[key] = counters.get(key, 0) + amount

    def record(self, scope: str, key: str, value: Number) -> None:
        """Set ``scope``/``key`` to ``value``, overwriting any prior value."""
        self.scope(scope)[key] = value

    def get(self, scope: str, key: str, default: Number = 0) -> Number:
        return self.scopes.get(scope, {}).get(key, default)

    def absorb(self, scope: str, stats: Mapping[str, Any]) -> "RunTelemetry":
        """Add every numeric entry of a legacy stats dict into ``scope``."""
        for key, value in stats.items():
            if _is_number(value):
                self.count(scope, key, value)
        return self

    def iter_counters(self) -> Iterator[Tuple[str, str, Number]]:
        """Yield every numeric ``(scope, key, value)`` triple, sorted.

        The flat view the metrics registry absorbs; non-numeric values are
        skipped with the same tolerance :meth:`absorb` extends to legacy
        stats dicts.
        """
        for scope_name in sorted(self.scopes):
            counters = self.scopes[scope_name]
            for key in sorted(counters):
                value = counters[key]
                if _is_number(value):
                    yield scope_name, key, value

    # -- combination ------------------------------------------------------

    def merged(
        self, *others: "RunTelemetry", label: Optional[str] = None
    ) -> "RunTelemetry":
        """Return a new record with counters summed across all operands."""
        result = RunTelemetry(label=self.label if label is None else label)
        for source in (self,) + tuple(others):
            for scope_name, counters in source.scopes.items():
                for key, value in counters.items():
                    result.count(scope_name, key, value)
        return result

    # -- persistence ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "scopes": {
                name: dict(sorted(counters.items()))
                for name, counters in sorted(self.scopes.items())
            }
        }
        if self.label:
            payload["label"] = self.label
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunTelemetry":
        scopes = payload.get("scopes", {})
        if not isinstance(scopes, Mapping):
            raise ValueError("telemetry payload 'scopes' must be a mapping")
        record = cls(label=str(payload.get("label", "")))
        for name, counters in scopes.items():
            if not isinstance(counters, Mapping):
                raise ValueError(f"telemetry scope {name!r} must be a mapping")
            record.absorb(str(name), counters)
        return record

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunTelemetry":
        return cls.from_dict(json.loads(text))

    # -- adapters for the legacy stats dicts ------------------------------

    @classmethod
    def from_solver_stats(
        cls, stats: Mapping[str, Any], label: str = ""
    ) -> "RunTelemetry":
        """Absorb :meth:`repro.sat.solver.SatSolver.stats` output."""
        return cls(label=label).absorb("solver", stats)

    @classmethod
    def from_cache_stats(
        cls, stats: Mapping[str, Any], label: str = ""
    ) -> "RunTelemetry":
        """Absorb :meth:`repro.ga.pinopt.PinAssignmentProblem.cache_stats`."""
        return cls(label=label).absorb("cache", stats)

    @classmethod
    def from_prefilter_stats(
        cls, stats: Mapping[str, Any], label: str = ""
    ) -> "RunTelemetry":
        """Absorb :meth:`repro.attacks.decamouflage.DecamouflageAttack.prefilter_stats`."""
        return cls(label=label).absorb("prefilter", stats)

    @classmethod
    def from_ga_history(
        cls, history: Sequence[Any], label: str = "", stopped_early: bool = False
    ) -> "RunTelemetry":
        """Summarise a GA run's ``GenerationStats`` history into counters."""
        record = cls(label=label)
        if not history:
            return record
        last = history[-1]
        record.record("ga", "generations", len(history))
        record.record("ga", "evaluations", getattr(last, "evaluations_so_far", 0))
        record.record("ga", "cache_hits", getattr(last, "cache_hits", 0))
        if stopped_early:
            # The wall-clock budget cut the search short; the best-so-far
            # genotype in the result is partial progress, not a converged run.
            record.record("ga", "stopped_early", 1)
        return record

    def __repr__(self) -> str:
        total = sum(len(counters) for counters in self.scopes.values())
        return (
            f"RunTelemetry(label={self.label!r}, scopes={sorted(self.scopes)}, "
            f"counters={total})"
        )


def window_hardness_from_payloads(
    payloads: Iterable[Mapping[str, Any]],
) -> Dict[int, float]:
    """Extract per-window attack-hardness scores from campaign job payloads.

    Accepts the JSON payload dicts persisted for ``window_obfuscate`` jobs and
    returns ``window index -> hardness``, where hardness is the sum of the
    DIP-query and solver-conflict counters measured when attacking that
    window.  Windows without telemetry are skipped; callers treat missing
    entries as "no measurement" and fall back to uniform budgets.
    """
    hardness: Dict[int, float] = {}
    for payload in payloads:
        if not isinstance(payload, Mapping) or "index" not in payload:
            continue
        telemetry = payload.get("telemetry")
        if not isinstance(telemetry, Mapping):
            continue
        record = RunTelemetry.from_dict(telemetry)
        score = record.get("window", "attack_queries") + record.get(
            "window", "solver_conflicts"
        )
        if score > 0:
            hardness[int(payload["index"])] = float(score)
    return hardness

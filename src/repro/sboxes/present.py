"""The PRESENT block-cipher S-box.

PRESENT (Bogdanov et al., CHES 2007) uses a single 4-bit S-box chosen from
the optimal class; the paper's first evaluation workload merges "PRESENT-
style" S-boxes, i.e. 4-bit optimal S-boxes of comparable cost (~30 GE).
"""

from __future__ import annotations

from typing import List

from ..logic.boolfunc import BoolFunction

__all__ = ["PRESENT_SBOX", "present_sbox", "present_sbox_inverse"]

#: The PRESENT S-box lookup table (input nibble -> output nibble).
PRESENT_SBOX: List[int] = [
    0xC, 0x5, 0x6, 0xB, 0x9, 0x0, 0xA, 0xD,
    0x3, 0xE, 0xF, 0x8, 0x4, 0x7, 0x1, 0x2,
]


def present_sbox(name: str = "present") -> BoolFunction:
    """Return the PRESENT S-box as a 4-input / 4-output Boolean function."""
    return BoolFunction.from_lookup(PRESENT_SBOX, 4, 4, name=name)


def present_sbox_inverse(name: str = "present_inv") -> BoolFunction:
    """Return the inverse PRESENT S-box as a Boolean function."""
    inverse = [0] * 16
    for index, value in enumerate(PRESENT_SBOX):
        inverse[value] = index
    return BoolFunction.from_lookup(inverse, 4, 4, name=name)

"""The eight DES S-boxes (6-bit input, 4-bit output).

The paper's second workload merges 2, 4, or all 8 DES S-boxes (each around
150 GE when synthesised standalone).  The tables below are the standard
FIPS 46-3 S-boxes, written as four rows of sixteen entries.  The input
convention is the usual one: for a 6-bit input ``b5 b4 b3 b2 b1 b0`` (``b5``
most significant), the row is ``2*b5 + b0`` and the column is the middle
four bits ``b4 b3 b2 b1``.

Structural sanity checks (every row of every S-box is a permutation of
0..15, as required by the DES design criteria) are enforced by the test
suite, which guards against transcription errors.
"""

from __future__ import annotations

from typing import List, Sequence

from ..logic.boolfunc import BoolFunction

__all__ = [
    "DES_SBOX_ROWS",
    "des_sbox_lookup",
    "des_sbox",
    "des_sboxes",
    "NUM_DES_SBOXES",
]

NUM_DES_SBOXES = 8

#: The DES S-boxes in row form: ``DES_SBOX_ROWS[i][row][column]``.
DES_SBOX_ROWS: List[List[List[int]]] = [
    [  # S1
        [14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7],
        [0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12, 11, 9, 5, 3, 8],
        [4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0],
        [15, 12, 8, 2, 4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13],
    ],
    [  # S2
        [15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10],
        [3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1, 10, 6, 9, 11, 5],
        [0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15],
        [13, 8, 10, 1, 3, 15, 4, 2, 11, 6, 7, 12, 0, 5, 14, 9],
    ],
    [  # S3
        [10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8],
        [13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5, 14, 12, 11, 15, 1],
        [13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7],
        [1, 10, 13, 0, 6, 9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12],
    ],
    [  # S4
        [7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15],
        [13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2, 12, 1, 10, 14, 9],
        [10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4],
        [3, 15, 0, 6, 10, 1, 13, 8, 9, 4, 5, 11, 12, 7, 2, 14],
    ],
    [  # S5
        [2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9],
        [14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15, 10, 3, 9, 8, 6],
        [4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14],
        [11, 8, 12, 7, 1, 14, 2, 13, 6, 15, 0, 9, 10, 4, 5, 3],
    ],
    [  # S6
        [12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11],
        [10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13, 14, 0, 11, 3, 8],
        [9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6],
        [4, 3, 2, 12, 9, 5, 15, 10, 11, 14, 1, 7, 6, 0, 8, 13],
    ],
    [  # S7
        [4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1],
        [13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5, 12, 2, 15, 8, 6],
        [1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2],
        [6, 11, 13, 8, 1, 4, 10, 7, 9, 5, 0, 15, 14, 2, 3, 12],
    ],
    [  # S8
        [13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7],
        [1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6, 11, 0, 14, 9, 2],
        [7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8],
        [2, 1, 14, 7, 4, 10, 8, 13, 15, 12, 9, 0, 3, 5, 6, 11],
    ],
]


def des_sbox_lookup(index: int) -> List[int]:
    """Return DES S-box ``index`` (0..7) as a flat 64-entry lookup table.

    Entry ``x`` is the output for the 6-bit input word ``x`` under the
    standard row/column convention described in the module docstring.
    """
    if not 0 <= index < NUM_DES_SBOXES:
        raise IndexError(f"DES S-box index {index} out of range (0..7)")
    rows = DES_SBOX_ROWS[index]
    table: List[int] = []
    for word in range(64):
        row = ((word >> 5) & 1) * 2 + (word & 1)
        column = (word >> 1) & 0xF
        table.append(rows[row][column])
    return table


def des_sbox(index: int, name: str = "") -> BoolFunction:
    """Return DES S-box ``index`` as a 6-input / 4-output Boolean function."""
    return BoolFunction.from_lookup(
        des_sbox_lookup(index), 6, 4, name=name or f"des_s{index + 1}"
    )


def des_sboxes(count: int = NUM_DES_SBOXES) -> List[BoolFunction]:
    """Return the first ``count`` DES S-boxes as Boolean functions."""
    if not 1 <= count <= NUM_DES_SBOXES:
        raise ValueError("count must be between 1 and 8")
    return [des_sbox(index) for index in range(count)]

"""S-box workload data: PRESENT, optimal 4-bit, DES, and AES-style S-boxes."""

from .aes import (
    AES_VARIANT_CONSTANTS,
    NUM_AES_SBOXES,
    aes_sbox,
    aes_sbox_inverse,
    aes_sbox_lookup,
    aes_sboxes,
)
from .des import DES_SBOX_ROWS, NUM_DES_SBOXES, des_sbox, des_sbox_lookup, des_sboxes
from .optimal4 import (
    OPTIMAL_SBOXES,
    find_optimal_sboxes,
    optimal_sbox,
    optimal_sbox_tables,
    optimal_sboxes,
)
from .present import PRESENT_SBOX, present_sbox, present_sbox_inverse

__all__ = [
    "PRESENT_SBOX",
    "present_sbox",
    "present_sbox_inverse",
    "OPTIMAL_SBOXES",
    "optimal_sbox",
    "optimal_sboxes",
    "optimal_sbox_tables",
    "find_optimal_sboxes",
    "DES_SBOX_ROWS",
    "NUM_DES_SBOXES",
    "des_sbox",
    "des_sbox_lookup",
    "des_sboxes",
    "AES_VARIANT_CONSTANTS",
    "NUM_AES_SBOXES",
    "aes_sbox",
    "aes_sbox_inverse",
    "aes_sbox_lookup",
    "aes_sboxes",
]

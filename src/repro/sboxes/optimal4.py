"""Optimal 4-bit S-boxes (the paper's PRESENT-style workload).

The paper uses the 16 representatives of the optimal 4-bit S-box classes from
Leander and Poschmann (WAIFI 2007) as the set of viable functions.  "Optimal"
means bijective with linearity 8 and differential uniformity 4 — the best
achievable for 4-bit permutations.

We do not transcribe the published class representatives (transcription
errors would be silent); instead this module ships a deterministic set of 16
distinct optimal S-boxes found by a seeded search and verified by the
checkers in :mod:`repro.logic.analysis`.  The first entry is the (exactly
known) PRESENT S-box, which belongs to one of the optimal classes.  The
search utility :func:`find_optimal_sboxes` remains available for generating
alternative workloads.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..logic.analysis import is_optimal_4bit_sbox
from ..logic.boolfunc import BoolFunction
from .present import PRESENT_SBOX

__all__ = [
    "OPTIMAL_SBOXES",
    "optimal_sbox",
    "optimal_sboxes",
    "find_optimal_sboxes",
]


def find_optimal_sboxes(
    count: int,
    seed: int = 2017,
    exclude: Optional[Sequence[Sequence[int]]] = None,
) -> List[List[int]]:
    """Search for ``count`` distinct optimal 4-bit S-boxes.

    The search is a seeded rejection sampler over random 4-bit permutations;
    with the default seed it reproduces the tables hard-coded in
    :data:`OPTIMAL_SBOXES`.
    """
    rng = random.Random(seed)
    found: List[List[int]] = []
    seen = {tuple(table) for table in (exclude or [])}
    while len(found) < count:
        candidate = list(range(16))
        rng.shuffle(candidate)
        key = tuple(candidate)
        if key in seen:
            continue
        if is_optimal_4bit_sbox(candidate):
            seen.add(key)
            found.append(candidate)
    return found


#: Sixteen distinct optimal 4-bit S-boxes.  Entry 0 is the PRESENT S-box; the
#: remaining fifteen were produced by ``find_optimal_sboxes(15, seed=2017,
#: exclude=[PRESENT_SBOX])`` and are pinned here so the workload is stable.
OPTIMAL_SBOXES: List[List[int]] = [
    list(PRESENT_SBOX),
]
# The generated tables are appended lazily the first time they are needed so
# that importing the package stays cheap; see :func:`optimal_sboxes`.
_GENERATED: Optional[List[List[int]]] = None


def _generated_tables() -> List[List[int]]:
    global _GENERATED
    if _GENERATED is None:
        _GENERATED = find_optimal_sboxes(15, seed=2017, exclude=[PRESENT_SBOX])
    return _GENERATED


def optimal_sbox(index: int, name: Optional[str] = None) -> BoolFunction:
    """Return optimal S-box ``index`` (0..15) as a Boolean function."""
    tables = optimal_sbox_tables()
    if not 0 <= index < len(tables):
        raise IndexError(f"optimal S-box index {index} out of range")
    return BoolFunction.from_lookup(
        tables[index], 4, 4, name=name or f"sbox{index}"
    )


def optimal_sbox_tables() -> List[List[int]]:
    """Return the 16 lookup tables (PRESENT first, then generated ones)."""
    return [list(PRESENT_SBOX)] + [list(t) for t in _generated_tables()]


def optimal_sboxes(count: int = 16) -> List[BoolFunction]:
    """Return the first ``count`` optimal S-boxes as Boolean functions."""
    if not 1 <= count <= 16:
        raise ValueError("count must be between 1 and 16")
    return [optimal_sbox(index) for index in range(count)]

"""AES-style 8-bit S-boxes (the registry's wide workload family).

The AES S-box (FIPS 197) is the composition of multiplicative inversion in
GF(2^8) (modulo the Rijndael polynomial ``x^8 + x^4 + x^3 + x + 1``) with an
affine transformation over GF(2).  Instead of transcribing the published
256-entry table (transcription errors would be silent), this module
*constructs* it from the field arithmetic; the test suite pins the canonical
first entries (``63 7c 77 7b ...``) and the structural properties.

"AES-style" variants — the viable-function sets the obfuscation flow merges
— share the inversion core but use different affine constants, the standard
way hardened AES implementations derive S-box variants.  Every variant is a
bijection on bytes and inherits the inversion core's nonlinearity, so the
family is a credible 8-bit analogue of the paper's 4-bit optimal-S-box
workload.  Variant 0 is the exact AES S-box; the remaining affine constants
are pinned so the workload is stable across runs.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List

from ..logic.boolfunc import BoolFunction

__all__ = [
    "AES_POLY",
    "AES_AFFINE_CONSTANT",
    "AES_VARIANT_CONSTANTS",
    "gf256_multiply",
    "gf256_inverse_table",
    "aes_sbox_lookup",
    "aes_sbox",
    "aes_sbox_inverse",
    "aes_sboxes",
    "NUM_AES_SBOXES",
]

#: The Rijndael reduction polynomial x^8 + x^4 + x^3 + x + 1 (0x11B), as the
#: low byte used during reduction.
AES_POLY = 0x1B

#: The affine constant of the canonical AES S-box.
AES_AFFINE_CONSTANT = 0x63

#: Affine constants of the variant family.  Entry 0 is the AES constant; the
#: rest are pinned distinct bytes, so the sixteen variants (the same size as
#: the 4-bit optimal workload) are stable across runs and platforms.
AES_VARIANT_CONSTANTS: List[int] = [
    0x63, 0x5A, 0xA5, 0x0F, 0xF0, 0x39, 0x93, 0xC6,
    0x6C, 0x17, 0x71, 0x8E, 0xE8, 0x2D, 0xD2, 0x4B,
]

NUM_AES_SBOXES = len(AES_VARIANT_CONSTANTS)


def gf256_multiply(a: int, b: int) -> int:
    """Multiply two bytes in GF(2^8) modulo the Rijndael polynomial."""
    product = 0
    for _ in range(8):
        if b & 1:
            product ^= a
        carry = a & 0x80
        a = (a << 1) & 0xFF
        if carry:
            a ^= AES_POLY
        b >>= 1
    return product


@lru_cache(maxsize=1)
def gf256_inverse_table() -> tuple:
    """The multiplicative-inverse table of GF(2^8) (0 maps to 0, as in AES).

    Built by exponentiation-free Fermat chains would be overkill here; a
    generator walk over the 255-element multiplicative group gives every
    inverse in one pass (0x03 is the standard generator).
    """
    # powers[k] = g^k; the inverse of g^k is g^(255 - k).
    powers = [1] * 255
    for k in range(1, 255):
        powers[k] = gf256_multiply(powers[k - 1], 0x03)
    index_of = {value: k for k, value in enumerate(powers)}
    inverse = [0] * 256
    for value in range(1, 256):
        inverse[value] = powers[(255 - index_of[value]) % 255]
    return tuple(inverse)


def _affine_transform(value: int, constant: int) -> int:
    """The AES affine map: bit i of the result is b_i ^ b_{i+4} ^ b_{i+5} ^
    b_{i+6} ^ b_{i+7} ^ c_i (indices mod 8)."""
    result = 0
    for i in range(8):
        bit = (
            (value >> i)
            ^ (value >> ((i + 4) % 8))
            ^ (value >> ((i + 5) % 8))
            ^ (value >> ((i + 6) % 8))
            ^ (value >> ((i + 7) % 8))
            ^ (constant >> i)
        ) & 1
        result |= bit << i
    return result


def aes_sbox_lookup(variant: int = 0) -> List[int]:
    """Return AES-style S-box ``variant`` as a flat 256-entry lookup table.

    Variant 0 is the canonical AES S-box; other variants substitute the
    pinned affine constants of :data:`AES_VARIANT_CONSTANTS`.
    """
    if not 0 <= variant < NUM_AES_SBOXES:
        raise IndexError(
            f"AES S-box variant {variant} out of range (0..{NUM_AES_SBOXES - 1})"
        )
    constant = AES_VARIANT_CONSTANTS[variant]
    inverse = gf256_inverse_table()
    return [_affine_transform(inverse[value], constant) for value in range(256)]


def aes_sbox(variant: int = 0, name: str = "") -> BoolFunction:
    """Return AES-style S-box ``variant`` as an 8-input / 8-output function."""
    return BoolFunction.from_lookup(
        aes_sbox_lookup(variant), 8, 8, name=name or f"aes_s{variant}"
    )


def aes_sbox_inverse(name: str = "aes_inv") -> BoolFunction:
    """Return the inverse of the canonical AES S-box as a Boolean function."""
    table = aes_sbox_lookup(0)
    inverse = [0] * 256
    for index, value in enumerate(table):
        inverse[value] = index
    return BoolFunction.from_lookup(inverse, 8, 8, name=name)


def aes_sboxes(count: int = NUM_AES_SBOXES) -> List[BoolFunction]:
    """Return the first ``count`` AES-style S-box variants."""
    if not 1 <= count <= NUM_AES_SBOXES:
        raise ValueError(f"count must be between 1 and {NUM_AES_SBOXES}")
    return [aes_sbox(variant) for variant in range(count)]

"""End-to-end obfuscation flow: Phase I + Phase II + Phase III + validation.

:func:`obfuscate` is the top-level API a user of the library calls: give it
the list of viable functions and it returns the camouflaged netlist together
with everything needed to audit the result (the chosen pin assignment, the
synthesised merged netlist, per-phase areas, and the designer-side
plausibility report).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..attacks.plausibility import PlausibilityReport, verify_viable_functions
from ..ga.engine import GAParameters, GenerationStats
from ..ga.pinopt import PinOptimizationResult, optimize_pin_assignment
from ..logic.boolfunc import BoolFunction
from ..merge.merged import MergedDesign, merge_functions
from ..merge.pinassign import PinAssignment
from ..netlist.library import CellLibrary, standard_cell_library
from ..netlist.netlist import Netlist
from ..camo.library import CamouflageLibrary, default_camouflage_library
from ..synth.script import SynthesisEffort, SynthesisResult, synthesize
from ..techmap.mapper import CamouflagedMapping, camouflage_map

__all__ = [
    "ObfuscationResult",
    "obfuscate",
    "obfuscate_with_assignment",
    "obfuscate_target",
]


@dataclass
class ObfuscationResult:
    """Everything produced by the three-phase flow."""

    viable_functions: List[BoolFunction]
    assignment: PinAssignment
    merged_design: MergedDesign
    synthesis: SynthesisResult
    mapping: CamouflagedMapping
    verification: PlausibilityReport
    pin_optimization: Optional[PinOptimizationResult] = None

    @property
    def synthesized_area(self) -> float:
        """Area (GE) after Phase I+II synthesis, before camouflage mapping."""
        return self.synthesis.area

    @property
    def camouflaged_area(self) -> float:
        """Area (GE) of the final camouflaged netlist."""
        return self.mapping.area()

    @property
    def netlist(self) -> Netlist:
        """The final camouflaged netlist."""
        return self.mapping.netlist

    def summary(self) -> str:
        """Multi-line human-readable summary of the flow outcome."""
        lines = [
            f"viable functions : {len(self.viable_functions)}",
            f"merged inputs    : {self.merged_design.num_data_inputs} data + "
            f"{self.merged_design.num_selects} select",
            f"synthesised area : {self.synthesized_area:.1f} GE",
            f"camouflaged area : {self.camouflaged_area:.1f} GE "
            f"({self.mapping.num_camouflaged_cells()} camouflaged cells)",
            f"validation       : {self.verification.summary()}",
        ]
        if self.pin_optimization is not None:
            lines.insert(
                2,
                f"GA evaluations   : {self.pin_optimization.evaluations} "
                f"(best fitness {self.pin_optimization.best_area:.1f} GE)",
            )
        return "\n".join(lines)


def obfuscate_with_assignment(
    functions: Sequence[BoolFunction],
    assignment: Optional[PinAssignment] = None,
    library: Optional[CellLibrary] = None,
    camo_library: Optional[CamouflageLibrary] = None,
    effort: str = SynthesisEffort.STANDARD,
    max_cover_depth: int = 2,
    verify: bool = True,
    jobs: int = 1,
    scheduler: Optional[str] = None,
) -> ObfuscationResult:
    """Run Phases I and III with a fixed (already chosen) pin assignment.

    ``jobs`` parallelises the Phase III per-tree covering across worker
    processes (1 = serial); the mapping is identical for every value.
    ``scheduler`` names the synthesis pass-scheduling strategy (default:
    fixed, the historic behaviour).
    """
    if not functions:
        raise ValueError("at least one viable function is required")
    library = library or standard_cell_library()
    camo_library = camo_library or default_camouflage_library(library)

    design = merge_functions(functions, assignment)
    synthesis = synthesize(design.function, library=library, effort=effort,
                           scheduler=scheduler)
    select_nets = [f"sel[{k}]" for k in range(design.num_selects)]
    mapping = camouflage_map(
        synthesis.netlist, select_nets, camo_library=camo_library,
        max_depth=max_cover_depth, jobs=jobs,
    )
    if verify:
        verification = verify_viable_functions(mapping, design, jobs=jobs)
    else:
        verification = PlausibilityReport(total=len(functions))
    return ObfuscationResult(
        viable_functions=list(functions),
        assignment=design.assignment,
        merged_design=design,
        synthesis=synthesis,
        mapping=mapping,
        verification=verification,
    )


def obfuscate(
    functions: Sequence[BoolFunction],
    ga_parameters: Optional[GAParameters] = None,
    library: Optional[CellLibrary] = None,
    camo_library: Optional[CamouflageLibrary] = None,
    fitness_effort: str = SynthesisEffort.FAST,
    final_effort: str = SynthesisEffort.STANDARD,
    max_cover_depth: int = 2,
    verify: bool = True,
    progress: Optional[Callable[[GenerationStats], None]] = None,
    jobs: int = 1,
    scheduler: Optional[str] = None,
) -> ObfuscationResult:
    """Run the full three-phase flow (GA pin optimisation included).

    ``jobs`` parallelises the Phase II fitness evaluations and the Phase III
    per-tree camouflage covering across worker processes (1 = serial);
    seeded results are identical for every value.  ``scheduler`` names the
    synthesis pass-scheduling strategy used throughout (default: fixed, the
    historic behaviour).
    """
    if not functions:
        raise ValueError("at least one viable function is required")
    library = library or standard_cell_library()
    camo_library = camo_library or default_camouflage_library(library)

    optimization = optimize_pin_assignment(
        functions,
        parameters=ga_parameters,
        library=library,
        effort=fitness_effort,
        final_effort=final_effort,
        progress=progress,
        jobs=jobs,
        scheduler=scheduler,
    )
    result = obfuscate_with_assignment(
        functions,
        assignment=optimization.best_assignment,
        library=library,
        camo_library=camo_library,
        effort=final_effort,
        max_cover_depth=max_cover_depth,
        verify=verify,
        jobs=jobs,
        scheduler=scheduler,
    )
    result.pin_optimization = optimization
    return result


def obfuscate_target(target, jobs: int = 1, progress=None, **kwargs):
    """Run the flow on any :class:`~repro.flow.target.ObfuscationTarget`.

    Dispatches to the classic function flow for
    :class:`~repro.flow.target.FunctionTarget` (returning
    :class:`ObfuscationResult`) and to the windowed netlist flow for
    :class:`~repro.flow.target.NetlistTarget` (returning
    :class:`~repro.flow.target.WindowedObfuscationResult`).
    """
    from .target import ObfuscationTarget

    if not isinstance(target, ObfuscationTarget):
        raise TypeError(
            f"expected an ObfuscationTarget, got {type(target).__name__}; "
            "wrap plain functions in FunctionTarget or a netlist in NetlistTarget"
        )
    return target.obfuscate(jobs=jobs, progress=progress, **kwargs)

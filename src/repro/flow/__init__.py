"""End-to-end obfuscation flow and reporting."""

from .obfuscate import (
    ObfuscationResult,
    obfuscate,
    obfuscate_target,
    obfuscate_with_assignment,
)
from .report import (
    AreaRow,
    SolverStatsRow,
    format_solver_stats,
    format_table,
    improvement_percent,
)
from .target import (
    FunctionTarget,
    NetlistTarget,
    ObfuscationTarget,
    WindowedObfuscationResult,
    obfuscate_netlist,
)

__all__ = [
    "ObfuscationResult",
    "obfuscate",
    "obfuscate_target",
    "obfuscate_with_assignment",
    "ObfuscationTarget",
    "FunctionTarget",
    "NetlistTarget",
    "WindowedObfuscationResult",
    "obfuscate_netlist",
    "AreaRow",
    "format_table",
    "improvement_percent",
    "SolverStatsRow",
    "format_solver_stats",
]

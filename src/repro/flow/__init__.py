"""End-to-end obfuscation flow and reporting."""

from .obfuscate import ObfuscationResult, obfuscate, obfuscate_with_assignment
from .report import (
    AreaRow,
    SolverStatsRow,
    format_solver_stats,
    format_table,
    improvement_percent,
)

__all__ = [
    "ObfuscationResult",
    "obfuscate",
    "obfuscate_with_assignment",
    "AreaRow",
    "format_table",
    "improvement_percent",
    "SolverStatsRow",
    "format_solver_stats",
]

"""Obfuscation targets: decoupling "thing to obfuscate" from "truth table".

The original flow API takes a list of exact viable functions — fine for
S-box-scale blocks, impossible for wide netlists (truth tables are
exponential in the input count).  A :class:`ObfuscationTarget` names the
thing being obfuscated and knows how to run the flow on it:

* :class:`FunctionTarget` — the classic path: a set of viable
  :class:`~repro.logic.boolfunc.BoolFunction`\\ s, handed unchanged to
  :func:`repro.flow.obfuscate.obfuscate`.
* :class:`NetlistTarget` — a wide gate-level netlist.  The netlist is
  decomposed into bounded-input windows
  (:func:`repro.netlist.window.extract_windows`), every window's exact
  function is extracted with a window-local exhaustive packed batch, decoy
  viable functions are generated per window, each window runs the full
  Phase I–III pipeline with its own GA budget, and the camouflaged windows
  are stitched back into the parent netlist.  No whole-netlist truth table
  is ever built.

:func:`obfuscate_netlist` is the windowed driver (per-window jobs fan out
over :mod:`repro.parallel`); :func:`assemble_windowed_result` is the
stitch-plus-verify half, shared with the campaign runner, whose per-window
jobs resume from on-disk state.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..camo.library import CamouflageLibrary, default_camouflage_library
from ..ga.engine import GAParameters
from ..logic.boolfunc import BoolFunction
from ..logic.truthtable import TruthTable
from ..netlist.library import CellLibrary, standard_cell_library
from ..netlist.netlist import Netlist
from ..netlist.window import (
    StitchedNetlist,
    Window,
    WindowError,
    WindowingStrategy,
    extract_windows,
    stitch_windows,
    window_subnetlist,
)
from ..synth.script import SynthesisEffort
from ..telemetry import RunTelemetry

__all__ = [
    "ObfuscationTarget",
    "FunctionTarget",
    "NetlistTarget",
    "WindowRecord",
    "WindowedVerification",
    "WindowedObfuscationResult",
    "decoy_functions",
    "decoy_budgets",
    "obfuscate_window",
    "obfuscate_netlist",
    "assemble_windowed_result",
    "DEFAULT_WINDOW_GA",
]

#: Default per-window GA budget: windows are small, so a light search per
#: window (times many windows) replaces one heavy search over the whole block.
DEFAULT_WINDOW_GA = GAParameters(population_size=4, generations=2, seed=1)

#: Whole-netlist SAT equivalence is only attempted up to this input count by
#: default; beyond it the per-window exhaustive proofs plus the random packed
#: cross-check carry the verification (each window is proven exhaustively,
#: and equivalence composes window-by-window).
DEFAULT_SAT_CHECK_LIMIT = 24


class ObfuscationTarget(ABC):
    """Something the flow can obfuscate (functions or a netlist)."""

    name: str = ""

    @abstractmethod
    def obfuscate(self, jobs: int = 1, progress: Optional[Callable] = None):
        """Run the flow on this target and return its result object."""

    @abstractmethod
    def describe(self) -> str:
        """One-line human-readable description."""


@dataclass
class FunctionTarget(ObfuscationTarget):
    """The classic workload: an explicit list of viable functions."""

    functions: Sequence[BoolFunction]
    ga_parameters: Optional[GAParameters] = None
    name: str = ""

    def __post_init__(self):
        if not self.functions:
            raise ValueError("a FunctionTarget needs at least one function")
        if not self.name:
            self.name = self.functions[0].name or "functions"

    def describe(self) -> str:
        function = self.functions[0]
        return (
            f"{len(self.functions)} viable function(s), "
            f"{function.num_inputs}x{function.num_outputs}"
        )

    def obfuscate(self, jobs: int = 1, progress: Optional[Callable] = None, **kwargs):
        from .obfuscate import obfuscate

        return obfuscate(
            self.functions,
            ga_parameters=self.ga_parameters,
            jobs=jobs,
            progress=progress,
            **kwargs,
        )


@dataclass
class NetlistTarget(ObfuscationTarget):
    """A wide netlist, obfuscated window-by-window (no global truth table)."""

    netlist: Netlist
    max_window_inputs: int = 8
    max_window_instances: int = 48
    decoys_per_window: int = 1
    ga_parameters: Optional[GAParameters] = None
    seed: int = 1
    name: str = ""
    #: Windowing strategy name (``greedy``/``hardness``; None = default).
    windowing: Optional[str] = None
    #: Synthesis pass-scheduler name (``fixed``/``adaptive``; None = default).
    scheduler: Optional[str] = None
    #: Measured per-window attack hardness (window index -> score) from
    #: previous campaign telemetry; weights the decoy budgets when present.
    hardness: Optional[Mapping[int, float]] = None

    def __post_init__(self):
        if not self.name:
            self.name = self.netlist.name

    def describe(self) -> str:
        return (
            f"netlist {self.netlist.name!r}: "
            f"{len(self.netlist.primary_inputs)} inputs, "
            f"{self.netlist.num_instances()} cells "
            f"(windows of <= {self.max_window_inputs} inputs)"
        )

    def windows(self) -> List[Window]:
        """The deterministic window decomposition of the netlist."""
        return extract_windows(
            self.netlist,
            max_inputs=self.max_window_inputs,
            max_instances=self.max_window_instances,
            strategy=self.windowing,
        )

    def obfuscate(self, jobs: int = 1, progress: Optional[Callable] = None, **kwargs):
        return obfuscate_netlist(
            self.netlist,
            max_window_inputs=self.max_window_inputs,
            max_window_instances=self.max_window_instances,
            decoys_per_window=self.decoys_per_window,
            ga_parameters=self.ga_parameters,
            seed=self.seed,
            windowing=self.windowing,
            scheduler=self.scheduler,
            hardness=self.hardness,
            jobs=jobs,
            progress=progress,
            **kwargs,
        )


# ------------------------------------------------------------------ #
# Per-window flow
# ------------------------------------------------------------------ #
def decoy_functions(
    reference: BoolFunction, count: int, seed: int, flips: Optional[int] = None
) -> List[BoolFunction]:
    """Seeded decoy viable functions shaped like ``reference``.

    Each decoy flips a small number of truth-table entries of the reference
    (``flips`` rows per output; default scales with the row count), mirroring
    the paper's workloads where the viable set consists of closely related
    variants (S-box families).  Staying close to the reference matters for
    cost, too: the merged multi-function circuit then synthesises to roughly
    the window plus small correction logic, instead of the near-worst-case
    area a random function of the same width would force.  Decoys are
    distinct from the reference and from each other.
    """
    if count < 0:
        raise ValueError("decoy count must be non-negative")
    rng = random.Random(seed)
    rows = 1 << reference.num_inputs
    if flips is None:
        flips = 2 if rows > 2 else 1
    flips = min(flips, rows)
    seen = {tuple(table.bits for table in reference.outputs)}
    decoys: List[BoolFunction] = []
    attempts = 0
    while len(decoys) < count:
        attempts += 1
        if attempts > 64 * (count + 1):
            raise ValueError(
                f"could not generate {count} distinct decoys for "
                f"{reference.name!r} (function space too small)"
            )
        tables: List[TruthTable] = []
        for table in reference.outputs:
            bits = table.bits
            for row in rng.sample(range(rows), flips):
                bits ^= 1 << row
            tables.append(TruthTable(reference.num_inputs, bits))
        key = tuple(table.bits for table in tables)
        if key in seen:
            continue
        seen.add(key)
        decoys.append(
            BoolFunction(
                tables, name=f"{reference.name}_decoy{len(decoys)}"
            )
        )
    return decoys


def decoy_budgets(
    windows: Sequence[Window],
    decoys_per_window: int,
    hardness: Optional[Mapping[int, float]] = None,
) -> Dict[int, int]:
    """Distribute the total decoy budget over windows, hardness-weighted.

    The total budget is ``decoys_per_window * len(windows)`` — the same
    spend as the uniform historic allocation.  Without hardness measurements
    every window gets exactly ``decoys_per_window`` (the historic split).
    With measurements (window index -> attack-hardness score: DIP counts
    plus solver conflicts from previous campaign telemetry), the budget is
    weighted *inversely* to hardness: a window the attack cracked cheaply is
    under-protected and receives more decoys, a window that already cost the
    attacker dearly needs fewer.  Unmeasured windows weigh as the median
    measured hardness.  Integerisation is by deterministic largest
    remainder, ties broken by window index.
    """
    if decoys_per_window < 0:
        raise ValueError("decoys_per_window must be non-negative")
    if not windows:
        return {}
    budgets = {window.index: decoys_per_window for window in windows}
    if not hardness or decoys_per_window == 0:
        return budgets
    scores = sorted(
        float(hardness[window.index])
        for window in windows
        if window.index in hardness
    )
    if not scores:
        return budgets
    median = scores[len(scores) // 2]
    weights = {
        window.index: 1.0
        / (1.0 + max(float(hardness.get(window.index, median)), 0.0))
        for window in windows
    }
    total_budget = decoys_per_window * len(windows)
    total_weight = sum(weights.values())
    shares = {
        index: total_budget * weight / total_weight
        for index, weight in weights.items()
    }
    budgets = {index: int(share) for index, share in shares.items()}
    leftover = total_budget - sum(budgets.values())
    by_remainder = sorted(
        shares, key=lambda index: (-(shares[index] - int(shares[index])), index)
    )
    for index in by_remainder[:leftover]:
        budgets[index] += 1
    return budgets


@dataclass
class WindowRecord:
    """The obfuscation outcome of one window.

    ``netlist`` is the camouflaged window (pin-compatible with the window's
    boundary contract); ``true_configuration`` maps its camouflaged
    instances to the configured functions realising the window's *true*
    function (select word 0 — the window function is viable function 0 and
    the first function's pin view is pinned to identity).  ``telemetry``
    carries per-window measurements (synthesis counters; attack-hardness
    probe results under the ``window`` scope when the probe ran).
    """

    window: Window
    netlist: Netlist
    true_configuration: Dict[str, TruthTable]
    num_viable: int
    seed: int
    synthesized_area: float = 0.0
    camouflaged_area: float = 0.0
    verification_ok: bool = True
    telemetry: Optional[RunTelemetry] = None


def obfuscate_window(
    subnetlist: Netlist,
    window: Window,
    decoys: int = 1,
    seed: int = 1,
    ga_parameters: Optional[GAParameters] = None,
    library: Optional[CellLibrary] = None,
    camo_library: Optional[CamouflageLibrary] = None,
    fitness_effort: str = SynthesisEffort.FAST,
    final_effort: str = SynthesisEffort.FAST,
    verify: bool = True,
    jobs: int = 1,
    scheduler: Optional[str] = None,
    probe_hardness: bool = False,
    probe_queries: int = 64,
) -> WindowRecord:
    """Run the full Phase I–III flow on one window subnetlist.

    The window's exact function (window-local exhaustive packed batch) is
    viable function 0; ``decoys`` seeded decoy functions complete the viable
    set.  Because the first function's pin view is pinned to identity,
    select word 0 realises the window function exactly, and
    ``true_configuration`` captures that configuration of the camouflaged
    cells.

    With ``probe_hardness`` the camouflaged window is additionally attacked
    with the oracle-guided DIP attack (cheap: windows are exhaustively
    simulable) and the measured cost — oracle queries and solver conflicts —
    is recorded in the record's telemetry under the ``window`` scope.  Those
    measurements are what :func:`decoy_budgets` consumes on the next run.
    """
    from ..sim.engine import NetlistSimulator
    from .obfuscate import obfuscate, obfuscate_with_assignment

    function = NetlistSimulator(subnetlist).extract_function()
    viable = [function] + decoy_functions(function, decoys, seed)
    import dataclasses

    parameters = dataclasses.replace(ga_parameters or DEFAULT_WINDOW_GA, seed=seed)
    if len(viable) > 1:
        result = obfuscate(
            viable,
            ga_parameters=parameters,
            library=library,
            camo_library=camo_library,
            fitness_effort=fitness_effort,
            final_effort=final_effort,
            verify=verify,
            jobs=jobs,
            scheduler=scheduler,
        )
    else:
        # A single viable function has no pin assignment to search.
        result = obfuscate_with_assignment(
            viable,
            library=library,
            camo_library=camo_library,
            effort=final_effort,
            verify=verify,
            jobs=jobs,
            scheduler=scheduler,
        )
    configuration = result.mapping.configuration_for_select(0)
    true_configuration = dict(configuration.as_cell_functions())
    telemetry = RunTelemetry(label=f"window{window.index}")
    telemetry.record("window", "num_viable", len(viable))
    telemetry.record("window", "decoys", decoys)
    if probe_hardness:
        from ..attacks.oracle_guided import attack_netlist

        plausible = {
            name: list(result.mapping.plausible_functions_of(name))
            for name in result.mapping.camouflaged_instances()
        }
        outcome = attack_netlist(
            result.netlist,
            plausible,
            true_configuration,
            max_queries=probe_queries,
            verify_samples=0,
        )
        telemetry.record("window", "attack_queries", outcome.num_queries)
        telemetry.record(
            "window",
            "solver_conflicts",
            int(outcome.solver_stats.get("conflicts", 0)),
        )
        telemetry.record("window", "attack_success", int(bool(outcome.success)))
    return WindowRecord(
        window=window,
        netlist=result.netlist,
        true_configuration=true_configuration,
        num_viable=len(viable),
        seed=seed,
        synthesized_area=result.synthesized_area,
        camouflaged_area=result.camouflaged_area,
        # A skipped check is not a failed one: the skip-verify path returns
        # an empty report whose all_realisable is False by construction.
        verification_ok=result.verification.all_realisable if verify else True,
        telemetry=telemetry,
    )


def _obfuscate_window_task(task: Tuple) -> WindowRecord:
    """Worker task: obfuscate one window (module-level so it pickles)."""
    (
        subnetlist,
        window,
        decoys,
        seed,
        parameters,
        fitness_effort,
        final_effort,
        verify,
        scheduler,
        probe_hardness,
    ) = task
    return obfuscate_window(
        subnetlist,
        window,
        decoys=decoys,
        seed=seed,
        ga_parameters=parameters,
        fitness_effort=fitness_effort,
        final_effort=final_effort,
        verify=verify,
        scheduler=scheduler,
        probe_hardness=probe_hardness,
    )


# ------------------------------------------------------------------ #
# Whole-netlist assembly and verification
# ------------------------------------------------------------------ #
@dataclass
class WindowedVerification:
    """Verification evidence for a stitched windowed obfuscation.

    ``windows_ok`` is the per-window designer-side check (exhaustive, hence
    a complete proof per window; window equivalences compose to whole-design
    equivalence).  ``simulation_ok`` is the whole-netlist packed cross-check
    (complete when ``simulation_complete``), ``sat_ok`` the whole-netlist
    miter check (None when skipped for width).
    """

    windows_ok: List[bool] = field(default_factory=list)
    simulation_ok: bool = True
    simulation_complete: bool = False
    simulation_patterns: int = 0
    sat_ok: Optional[bool] = None

    @property
    def ok(self) -> bool:
        """True when every performed check passed."""
        return (
            all(self.windows_ok)
            and self.simulation_ok
            and (self.sat_ok is None or self.sat_ok)
        )

    def summary(self) -> str:
        parts = [
            f"windows {sum(self.windows_ok)}/{len(self.windows_ok)} ok",
            f"packed sim {'ok' if self.simulation_ok else 'FAILED'} "
            f"({'exhaustive' if self.simulation_complete else 'sampled'}, "
            f"{self.simulation_patterns} patterns)",
        ]
        if self.sat_ok is not None:
            parts.append(f"SAT miter {'ok' if self.sat_ok else 'FAILED'}")
        return "; ".join(parts)


@dataclass
class WindowedObfuscationResult:
    """Everything produced by the windowed (netlist-target) flow."""

    original: Netlist
    stitched: StitchedNetlist
    records: List[WindowRecord]
    camo_library: CamouflageLibrary
    true_configuration: Dict[str, TruthTable]
    verification: WindowedVerification

    @property
    def netlist(self) -> Netlist:
        """The stitched camouflaged netlist."""
        return self.stitched.netlist

    @property
    def windows(self) -> Tuple[Window, ...]:
        """The window decomposition that was obfuscated."""
        return self.stitched.windows

    @property
    def camouflaged_area(self) -> float:
        """Area (GE) of the stitched camouflaged netlist."""
        return self.netlist.area()

    def camouflaged_instances(self) -> List[str]:
        """Stitched names of every camouflaged instance."""
        return sorted(self.true_configuration)

    def instance_plausible(self) -> Dict[str, List[TruthTable]]:
        """Adversary view: plausible function family per camouflaged instance."""
        plausible: Dict[str, List[TruthTable]] = {}
        for name in self.true_configuration:
            cell = self.netlist.instance(name).cell
            plausible[name] = list(self.camo_library[cell].plausible)
        return plausible

    def telemetry(self, label: str = "windowed") -> RunTelemetry:
        """Merged telemetry of every window record (counters sum)."""
        per_window = [
            record.telemetry for record in self.records if record.telemetry is not None
        ]
        base = RunTelemetry(label=label)
        if not per_window:
            return base
        return base.merged(*per_window, label=label)

    def summary(self) -> str:
        """Multi-line human-readable summary of the windowed flow outcome."""
        lines = [
            f"windows          : {len(self.records)} "
            f"(<= {max((w.num_inputs for w in self.windows), default=0)} inputs each)",
            f"original area    : {self.original.area():.1f} GE "
            f"({self.original.num_instances()} cells)",
            f"camouflaged area : {self.camouflaged_area:.1f} GE "
            f"({len(self.true_configuration)} camouflaged cells)",
            f"validation       : {self.verification.summary()}",
        ]
        return "\n".join(lines)


def assemble_windowed_result(
    original: Netlist,
    records: Sequence[WindowRecord],
    camo_library: Optional[CamouflageLibrary] = None,
    verify: bool = True,
    verify_patterns: int = 1024,
    verify_seed: int = 7,
    sat_check: Optional[bool] = None,
    jobs: int = 1,
) -> WindowedObfuscationResult:
    """Stitch per-window records into the parent and verify the result.

    Verification layers (all verdict-preserving):

    * per-window designer checks carried by the records (exhaustive);
    * a whole-netlist packed cross-check of original vs stitched under the
      true configuration — exhaustive (complete) for small input counts,
      seeded random batches (sharded over ``jobs``) otherwise;
    * a whole-netlist SAT miter check — by default only attempted up to
      :data:`DEFAULT_SAT_CHECK_LIMIT` inputs (``sat_check`` forces it on or
      off explicitly).
    """
    camo_library = camo_library or default_camouflage_library(original.library)
    records = list(records)
    windows = [record.window for record in records]
    stitched = stitch_windows(
        original, windows, [record.netlist for record in records]
    )
    true_configuration = stitched.map_cell_functions(
        [record.true_configuration for record in records]
    )

    verification = WindowedVerification(
        windows_ok=[record.verification_ok for record in records]
    )
    if verify:
        from ..sat.equivalence import check_netlist_equivalence
        from ..sim.prefilter import fuzz_netlist_vs_netlist

        outcome = fuzz_netlist_vs_netlist(
            original,
            stitched.netlist,
            cell_functions_b=true_configuration,
            patterns=verify_patterns,
            seed=verify_seed,
            jobs=jobs,
        )
        verification.simulation_ok = not outcome.refuted
        verification.simulation_complete = outcome.complete
        verification.simulation_patterns = outcome.patterns
        num_inputs = len(original.primary_inputs)
        run_sat = (
            sat_check
            if sat_check is not None
            else num_inputs <= DEFAULT_SAT_CHECK_LIMIT
        )
        if run_sat:
            result = check_netlist_equivalence(
                original,
                stitched.netlist,
                cell_functions_b=true_configuration,
                prefilter=False,
            )
            verification.sat_ok = bool(result)
    return WindowedObfuscationResult(
        original=original,
        stitched=stitched,
        records=records,
        camo_library=camo_library,
        true_configuration=true_configuration,
        verification=verification,
    )


def obfuscate_netlist(
    netlist: Netlist,
    max_window_inputs: int = 8,
    max_window_instances: int = 48,
    decoys_per_window: int = 1,
    ga_parameters: Optional[GAParameters] = None,
    seed: int = 1,
    fitness_effort: str = SynthesisEffort.FAST,
    final_effort: str = SynthesisEffort.FAST,
    verify: bool = True,
    verify_patterns: int = 1024,
    sat_check: Optional[bool] = None,
    jobs: int = 1,
    progress: Optional[Callable[[str], None]] = None,
    windowing: Union[None, str, WindowingStrategy] = None,
    scheduler: Optional[str] = None,
    hardness: Optional[Mapping[int, float]] = None,
    probe_hardness: bool = False,
) -> WindowedObfuscationResult:
    """Obfuscate a wide netlist window-by-window and stitch the result.

    Every window runs the full Phase I–III pipeline with its own seeded GA
    budget; window jobs fan out over the worker pool (``jobs``), and results
    are identical for every ``jobs`` value (windows are seeded
    independently, deterministically).

    ``windowing`` selects the clustering strategy (default: the historic
    levelized greedy), ``scheduler`` the synthesis pass-scheduling strategy
    (default: fixed).  ``hardness`` (window index -> measured attack
    hardness, e.g. from :func:`repro.telemetry.window_hardness_from_payloads`)
    redistributes the decoy budget via :func:`decoy_budgets`;
    ``probe_hardness`` measures each window's hardness during this run so
    the *next* run can consume it.
    """
    from ..parallel import parallel_map

    report = progress or (lambda message: None)
    windows = extract_windows(
        netlist, max_inputs=max_window_inputs, max_instances=max_window_instances,
        strategy=windowing,
    )
    report(
        f"windowing {netlist.name}: {len(windows)} windows over "
        f"{netlist.num_instances()} cells"
    )
    budgets = decoy_budgets(windows, decoys_per_window, hardness)
    tasks = [
        (
            window_subnetlist(netlist, window),
            window,
            budgets[window.index],
            seed + window.index,
            ga_parameters,
            fitness_effort,
            final_effort,
            verify,
            scheduler,
            probe_hardness,
        )
        for window in windows
    ]
    records = parallel_map(_obfuscate_window_task, tasks, jobs=jobs)
    for record in records:
        report(
            f"window {record.window.index}: {record.window.num_inputs} inputs, "
            f"{record.num_viable} viable, "
            f"{record.camouflaged_area:.1f} GE camouflaged"
        )
    return assemble_windowed_result(
        netlist,
        records,
        verify=verify,
        verify_patterns=verify_patterns,
        sat_check=sat_check,
        jobs=jobs,
    )

"""Reporting helpers: the area comparisons of Table I and SAT solver work.

The paper compares, for every merged-S-box configuration, four areas — the
average and best of a batch of random pin assignments, the GA result, and
the GA result after camouflage technology mapping — plus the relative
improvement of GA+TM over the best random assignment.  :class:`AreaRow`
holds one such row and :func:`format_table` renders a list of rows the way
Table I is laid out.

:class:`SolverStatsRow` / :func:`format_solver_stats` render the cumulative
statistics of the incremental SAT solvers that power the adversary stack
(conflicts / decisions / propagations per workload), which the attack
benchmarks and the CLI surface alongside the hardness numbers.

:class:`CacheStatsRow` / :func:`format_cache_stats` do the same for the
synthesis-side fitness caches of Phase II (genotype-level hits, canonical
signature hits, actual synthesis runs, worker count), so the experiment
harnesses can report how much synthesis work batching and memoisation
avoided — the synthesis-side counterpart of the solver-work table.

Both stats rows are thin views over :class:`repro.telemetry.RunTelemetry` —
the unified counter record every layer now emits: ``from_stats`` first
absorbs the legacy dict into a telemetry record and then reads the row out
of it, and ``from_telemetry`` builds a row straight from a record (the path
campaign payloads and ``BENCH_*.json`` artifacts use).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Mapping, Optional

from ..telemetry import RunTelemetry

__all__ = [
    "AreaRow",
    "improvement_percent",
    "format_table",
    "SolverStatsRow",
    "format_solver_stats",
    "CacheStatsRow",
    "format_cache_stats",
]


def improvement_percent(reference: float, improved: float) -> float:
    """Relative improvement of ``improved`` over ``reference`` in percent."""
    if reference <= 0:
        raise ValueError("reference area must be positive")
    return 100.0 * (reference - improved) / reference


@dataclass
class AreaRow:
    """One row of the Table I reproduction."""

    circuit: str
    num_functions: int
    random_avg: float
    random_best: float
    ga_area: float
    ga_tm_area: float

    @property
    def improvement(self) -> float:
        """Improvement (%) of GA+TM over the best random assignment."""
        return improvement_percent(self.random_best, self.ga_tm_area)

    def as_dict(self) -> dict:
        """Return the row as a plain dictionary (for JSON dumps)."""
        return {
            "circuit": self.circuit,
            "num_functions": self.num_functions,
            "random_avg": self.random_avg,
            "random_best": self.random_best,
            "ga": self.ga_area,
            "ga_tm": self.ga_tm_area,
            "improvement_percent": self.improvement,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "AreaRow":
        """Rebuild a row from :meth:`as_dict` output (campaign state files)."""
        return cls(
            circuit=data["circuit"],
            num_functions=data["num_functions"],
            random_avg=data["random_avg"],
            random_best=data["random_best"],
            ga_area=data["ga"],
            ga_tm_area=data["ga_tm"],
        )


def format_table(rows: Iterable[AreaRow], title: Optional[str] = None) -> str:
    """Render rows in the layout of Table I."""
    lines: List[str] = []
    if title:
        lines.append(title)
    header = (
        f"{'Circuit':<10}{'#S-boxes':>9}{'Rand avg':>10}{'Rand best':>11}"
        f"{'GA':>8}{'GA+TM':>8}{'Impr(%)':>9}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            f"{row.circuit:<10}{row.num_functions:>9}{row.random_avg:>10.0f}"
            f"{row.random_best:>11.0f}{row.ga_area:>8.0f}{row.ga_tm_area:>8.0f}"
            f"{row.improvement:>9.0f}"
        )
    return "\n".join(lines)


@dataclass
class SolverStatsRow:
    """Cumulative incremental-solver statistics for one workload."""

    label: str
    solve_calls: int
    conflicts: int
    decisions: int
    propagations: int
    learned_clauses: int = 0

    @classmethod
    def from_telemetry(cls, telemetry: RunTelemetry, label: str = "") -> "SolverStatsRow":
        """View the ``solver`` scope of a telemetry record as a row."""
        return cls(
            label=label or telemetry.label,
            solve_calls=int(telemetry.get("solver", "solve_calls")),
            conflicts=int(telemetry.get("solver", "conflicts")),
            decisions=int(telemetry.get("solver", "decisions")),
            propagations=int(telemetry.get("solver", "propagations")),
            learned_clauses=int(telemetry.get("solver", "learned_clauses")),
        )

    @classmethod
    def from_stats(cls, label: str, stats: Mapping[str, int]) -> "SolverStatsRow":
        """Build a row from :meth:`repro.sat.solver.SatSolver.stats` output."""
        return cls.from_telemetry(
            RunTelemetry.from_solver_stats(stats, label=label)
        )

    def to_telemetry(self) -> RunTelemetry:
        """The row as a telemetry record (``solver`` scope)."""
        record = RunTelemetry(label=self.label)
        record.absorb(
            "solver",
            {
                "solve_calls": self.solve_calls,
                "conflicts": self.conflicts,
                "decisions": self.decisions,
                "propagations": self.propagations,
                "learned_clauses": self.learned_clauses,
            },
        )
        return record

    def as_dict(self) -> dict:
        """Return the row as a plain dictionary (for JSON dumps)."""
        return {
            "label": self.label,
            "solve_calls": self.solve_calls,
            "conflicts": self.conflicts,
            "decisions": self.decisions,
            "propagations": self.propagations,
            "learned_clauses": self.learned_clauses,
        }


def format_solver_stats(
    rows: Iterable[SolverStatsRow], title: Optional[str] = None
) -> str:
    """Render solver-work rows as a small aligned table."""
    lines: List[str] = []
    if title:
        lines.append(title)
    header = (
        f"{'Workload':<24}{'Calls':>7}{'Conflicts':>11}{'Decisions':>11}"
        f"{'Props':>10}{'Learned':>9}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            f"{row.label:<24}{row.solve_calls:>7}{row.conflicts:>11}"
            f"{row.decisions:>11}{row.propagations:>10}{row.learned_clauses:>9}"
        )
    return "\n".join(lines)


@dataclass
class CacheStatsRow:
    """Fitness-cache counters for one Phase II workload.

    ``evaluations`` is the number of actual synthesis runs; ``genotype_hits``
    and ``signature_hits`` count evaluations served by the genotype cache and
    the canonical-signature cache respectively (see
    :meth:`repro.ga.pinopt.PinAssignmentProblem.cache_stats`).  When the run
    used worker processes, the counters reflect the parent process only.
    """

    label: str
    evaluations: int
    genotype_hits: int = 0
    signature_hits: int = 0
    jobs: int = 1

    @property
    def requests(self) -> int:
        """Total fitness requests the counters account for."""
        return self.evaluations + self.genotype_hits + self.signature_hits

    @property
    def hit_rate(self) -> float:
        """Fraction of fitness requests served without synthesis."""
        requests = self.requests
        if requests == 0:
            return 0.0
        return (self.genotype_hits + self.signature_hits) / requests

    @classmethod
    def from_telemetry(
        cls, telemetry: RunTelemetry, label: str = "", jobs: int = 1
    ) -> "CacheStatsRow":
        """View the ``cache`` scope of a telemetry record as a row."""
        return cls(
            label=label or telemetry.label,
            evaluations=int(telemetry.get("cache", "evaluations")),
            genotype_hits=int(telemetry.get("cache", "genotype_hits")),
            signature_hits=int(telemetry.get("cache", "signature_hits")),
            jobs=jobs,
        )

    @classmethod
    def from_stats(
        cls, label: str, stats: Mapping[str, int], jobs: int = 1
    ) -> "CacheStatsRow":
        """Build a row from :meth:`PinAssignmentProblem.cache_stats` output."""
        return cls.from_telemetry(
            RunTelemetry.from_cache_stats(stats, label=label), jobs=jobs
        )

    def to_telemetry(self) -> RunTelemetry:
        """The row as a telemetry record (``cache`` scope)."""
        record = RunTelemetry(label=self.label)
        record.absorb(
            "cache",
            {
                "evaluations": self.evaluations,
                "genotype_hits": self.genotype_hits,
                "signature_hits": self.signature_hits,
            },
        )
        return record

    def as_dict(self) -> dict:
        """Return the row as a plain dictionary (for JSON dumps)."""
        return {
            "label": self.label,
            "evaluations": self.evaluations,
            "genotype_hits": self.genotype_hits,
            "signature_hits": self.signature_hits,
            "hit_rate": self.hit_rate,
            "jobs": self.jobs,
        }


def format_cache_stats(
    rows: Iterable[CacheStatsRow], title: Optional[str] = None
) -> str:
    """Render fitness-cache rows as a small aligned table."""
    lines: List[str] = []
    if title:
        lines.append(title)
    header = (
        f"{'Workload':<24}{'Synth':>7}{'GenoHits':>10}{'SigHits':>9}"
        f"{'HitRate':>9}{'Jobs':>6}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            f"{row.label:<24}{row.evaluations:>7}{row.genotype_hits:>10}"
            f"{row.signature_hits:>9}{100 * row.hit_rate:>8.1f}%{row.jobs:>6}"
        )
    return "\n".join(lines)

"""Process-pool helpers for the evaluation and synthesis sweeps.

The Phase II search and the Table I / Figure 4 harnesses are embarrassingly
parallel across genotypes and across workload rows: every task is a pure
function of its inputs.  :class:`WorkerPool` wraps
:class:`concurrent.futures.ProcessPoolExecutor` with the semantics those
callers need:

* **Deterministic result ordering** — ``map`` returns results in input
  order, regardless of which worker finished first, so seeded runs are
  bit-identical for any ``jobs`` setting.
* **Serial fallback** — ``jobs=1`` (the default everywhere) never spawns a
  process; the function is applied inline, which also keeps caches in the
  calling process warm.
* **Graceful degradation** — if worker processes cannot be used (pickling
  failure, broken pool, restricted environment), the pool falls back to
  serial execution instead of failing the experiment.
* **Worker supervision** — a worker process that dies mid-batch (SIGKILL,
  OOM, segfault) no longer takes the whole batch down: finished results
  are kept, the pool is respawned, and the unfinished items are
  resubmitted transparently.  An item that repeatedly kills its worker
  surfaces as :class:`WorkerCrashed` carrying the offending item index,
  instead of an indefinite hang or an all-or-nothing serial fallback.

The worker function is shipped to each worker once (via the pool
initializer), not once per task, so a fitness callable carrying large
problem state (S-box truth tables, cell libraries, caches) is pickled
``jobs`` times per pool rather than once per genotype.

The ``jobs`` count used by the CLI and the benchmark harness defaults to the
``REPRO_JOBS`` environment variable (see :func:`resolve_jobs`).
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import BrokenExecutor, Future
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

__all__ = [
    "WorkerCrashed",
    "WorkerPool",
    "parallel_map",
    "resolve_jobs",
    "available_cpus",
    "register_worker_warmup",
    "worker_warmups",
    "JOBS_ENV_VAR",
]


class WorkerCrashed(RuntimeError):
    """A worker process died (and kept dying) while computing an item.

    Raised by :meth:`WorkerPool.map` / :meth:`WorkerPool.imap` when worker
    supervision gives up: either the same item was in flight across two
    consecutive pool crashes (it is almost certainly the killer) or the
    pool-restart budget is spent.  ``item_index`` names the input-order
    index of the offending item so callers can report the job it belongs
    to.  A crash is *not* silently retried in the parent process — a task
    that SIGKILLs its worker would take the whole run down with it.
    """

    def __init__(self, message: str, item_index: Optional[int] = None):
        super().__init__(message)
        self.item_index = item_index

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable supplying the default worker count.
JOBS_ENV_VAR = "REPRO_JOBS"


def available_cpus() -> int:
    """Number of CPUs usable by this process (at least 1)."""
    getter = getattr(os, "process_cpu_count", None)
    if getter is not None:
        return max(1, getter() or 1)
    return max(1, os.cpu_count() or 1)


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve an explicit or environment-provided worker count.

    ``jobs`` wins when it is a positive integer; otherwise the ``REPRO_JOBS``
    environment variable is consulted; otherwise the result is 1 (serial).
    """
    if jobs is not None and jobs > 0:
        return jobs
    raw = os.environ.get(JOBS_ENV_VAR, "")
    try:
        value = int(raw)
    except ValueError:
        return 1
    return value if value > 0 else 1


# The worker function is installed once per worker process by the pool
# initializer and looked up by every subsequent task.
_WORKER_FUNCTION: Optional[Callable] = None

# Warm-up callables run once per worker process at pool start-up (after the
# worker function is installed), before the first task.  Subsystems register
# cache-priming hooks here — e.g. the persistent synthesis cache loads its
# JSONL store once per worker instead of on the first task's first miss.
_WORKER_WARMUPS: List[Callable[[], None]] = []


def register_worker_warmup(warmup: Callable[[], None]) -> Callable[[], None]:
    """Register a per-worker warm-up hook (idempotent; returns the hook).

    The hook must be a picklable module-level callable taking no arguments.
    It runs once in every worker process a :class:`WorkerPool` spawns (and
    never in the parent); exceptions are swallowed — a failed warm-up only
    costs the optimisation it would have provided.
    """
    if warmup not in _WORKER_WARMUPS:
        _WORKER_WARMUPS.append(warmup)
    return warmup


def worker_warmups() -> List[Callable[[], None]]:
    """The currently registered warm-up hooks (mainly for tests)."""
    return list(_WORKER_WARMUPS)


def _install_worker(function: Callable, warmups: Sequence[Callable[[], None]] = ()) -> None:
    global _WORKER_FUNCTION
    _WORKER_FUNCTION = function
    for warmup in warmups:
        try:
            warmup()
        except Exception:
            pass  # a warm-up is an optimisation, never a failure mode


# Marker tagging a task item shipped with the submitter's trace context.
_TRACE_TAG = "__repro_traceparent__"


def _ship(item):
    """Wrap a task item with the ambient trace context (when tracing).

    The envelope rides the existing pickle channel to the worker, where
    :func:`_call_worker` unwraps it and attaches the context, so spans a
    worker opens parent under the submitting process's span.  With
    tracing disabled this is one boolean test per submitted item.
    """
    from .obs.trace import current_traceparent, tracing_enabled

    if not tracing_enabled():
        return item
    traceparent = current_traceparent()
    if not traceparent:
        return item
    return (_TRACE_TAG, traceparent, item)


def _call_worker(item):
    assert _WORKER_FUNCTION is not None, "worker pool initializer did not run"
    if isinstance(item, tuple) and len(item) == 3 and item[0] == _TRACE_TAG:
        from .obs.trace import attach_context

        with attach_context(item[1]):
            return _WORKER_FUNCTION(item[2])
    return _WORKER_FUNCTION(item)


class WorkerPool:
    """An ordered ``map`` over a fixed function, optionally multi-process.

    The pool is lazy: worker processes are only started on the first parallel
    ``map`` call, and only when more than one worker is useful.  The number
    of worker processes is clamped to the CPUs actually available unless
    ``oversubscribe`` is set: every process past the core count merely
    duplicates work (each worker warms its own memo caches), so on a small
    machine a large ``jobs`` value silently degrades to what the hardware
    can exploit — results are identical either way.  Use as a context
    manager or call :meth:`close` explicitly.
    """

    #: Pool respawns allowed per map/imap call before WorkerCrashed is raised.
    MAX_POOL_RESTARTS = 3

    def __init__(
        self, function: Callable[[T], R], jobs: int = 1, oversubscribe: bool = False
    ):
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self._function = function
        self.jobs = jobs
        self.workers = jobs if oversubscribe else min(jobs, available_cpus())
        self._executor = None
        self._broken = False
        #: Cumulative supervision counters (robustness telemetry).
        self.worker_crashes = 0
        self.pool_restarts = 0

    # -------------------------------------------------------------- #
    # Mapping
    # -------------------------------------------------------------- #
    def map(self, items: Sequence[T]) -> List[R]:
        """Apply the function to every item, returning results in order.

        Exceptions raised by the task function propagate unchanged, exactly
        as in a serial run.  A worker process that *dies* is handled by
        supervision: the pool is respawned and unfinished items resubmitted;
        a persistent killer item raises :class:`WorkerCrashed`.
        """
        items = list(items)
        if self.workers <= 1 or self._broken or len(items) <= 1:
            return [self._function(item) for item in items]
        executor = self._ensure_executor()
        if executor is None:
            return [self._function(item) for item in items]
        return list(self._supervised(items, executor))

    def imap(self, items: Sequence[T]):
        """Lazily yield results in input order as they become available.

        Same semantics as :meth:`map` (ordering, serial fallback, worker
        supervision), but results stream out one by one, so a consumer can
        checkpoint each finished item before the whole batch is done — the
        campaign runner persists per-job state this way.
        """
        items = list(items)
        executor = None
        if not (self.workers <= 1 or self._broken or len(items) <= 1):
            executor = self._ensure_executor()
        if executor is None:
            for item in items:
                yield self._function(item)
            return
        yield from self._supervised(items, executor)

    # -------------------------------------------------------------- #
    # Supervised execution
    # -------------------------------------------------------------- #
    @staticmethod
    def _keepable(future: Future) -> bool:
        """Did this future finish with a genuine task outcome?

        Results and real task exceptions survive a pool crash; cancelled
        futures and infrastructure failures (BrokenExecutor) must re-run.
        """
        if not future.done() or future.cancelled():
            return False
        exception = future.exception()
        return exception is None or not isinstance(exception, BrokenExecutor)

    def _supervised(self, items: Sequence[T], executor):
        """Yield results in order, respawning the pool around dead workers."""
        futures: List[Future] = [
            executor.submit(_call_worker, _ship(item)) for item in items
        ]
        blamed: Optional[int] = None
        restarts_this_batch = 0
        index = 0
        while index < len(items):
            try:
                result = futures[index].result()
            except pickle.PicklingError:
                # Unpicklable item: parallelism cannot work for this pool.
                # Keep everything already finished, run the rest inline.
                self._broken = True
                self._shutdown()
                for position in range(index, len(items)):
                    future = futures[position]
                    if self._keepable(future):
                        yield future.result()
                    else:
                        yield self._function(items[position])
                return
            except BrokenExecutor:
                # A worker process died.  The oldest unfinished item (this
                # one) is the prime suspect: if it was already blamed for
                # the previous crash, resubmitting it would kill the next
                # pool too — surface it instead of looping forever.
                self.worker_crashes += 1
                if blamed == index:
                    self._shutdown()
                    raise WorkerCrashed(
                        f"worker process died twice while computing item {index}; "
                        "not resubmitting it again",
                        item_index=index,
                    )
                if restarts_this_batch >= self.MAX_POOL_RESTARTS:
                    self._shutdown()
                    raise WorkerCrashed(
                        f"worker pool crashed around item {index} after "
                        f"{restarts_this_batch} restarts in one batch; giving up",
                        item_index=index,
                    )
                blamed = index
                restarts_this_batch += 1
                self.pool_restarts += 1
                self._shutdown()
                executor = self._ensure_executor()
                if executor is None:
                    # Could not respawn (restricted environment): finish the
                    # batch inline rather than dropping results.
                    self._broken = True
                    for position in range(index, len(items)):
                        future = futures[position]
                        if self._keepable(future):
                            yield future.result()
                        else:
                            yield self._function(items[position])
                    return
                for position in range(index, len(items)):
                    if not self._keepable(futures[position]):
                        futures[position] = executor.submit(
                            _call_worker, _ship(items[position])
                        )
                continue
            yield result
            index += 1

    def _ensure_executor(self):
        if self._executor is not None:
            return self._executor
        try:
            from concurrent.futures import ProcessPoolExecutor

            # Pre-flight: an unpicklable worker function can never reach a
            # worker process; degrade to serial deterministically instead of
            # letting every worker die at initialisation (which supervision
            # would misread as a crashing task).
            pickle.dumps(self._function)
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_install_worker,
                initargs=(self._function, tuple(_WORKER_WARMUPS)),
            )
        except Exception:
            self._broken = True
            self._executor = None
        return self._executor

    # -------------------------------------------------------------- #
    # Lifecycle
    # -------------------------------------------------------------- #
    def close(self) -> None:
        """Shut down worker processes (idempotent)."""
        self._shutdown()

    def _shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def parallel_map(
    function: Callable[[T], R],
    items: Iterable[T],
    jobs: int = 1,
    oversubscribe: bool = False,
) -> List[R]:
    """One-shot ordered parallel map (serial when ``jobs == 1``)."""
    with WorkerPool(function, jobs=jobs, oversubscribe=oversubscribe) as pool:
        return pool.map(list(items))

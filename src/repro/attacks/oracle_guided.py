"""Oracle-guided (SAT) decamouflaging attack.

The paper's introduction notes that when an adversary can observe the
circuit's true input/output behaviour (e.g. through a scan chain), SAT-based
attacks in the style of references [11] and [12] apply.  This module
implements that stronger adversary as an extension of the reproduction: the
classic *distinguishing-input-pattern* (DIP) loop.

The attacker holds the camouflaged netlist (with the plausible-function
family of every camouflaged instance) and black-box access to the configured
chip.  Each iteration asks a SAT solver for an input on which two
still-consistent configurations disagree, queries the oracle on that input,
and constrains all future configurations to agree with the observed output.
When no distinguishing input remains, every surviving configuration is
functionally equivalent to the chip and the function has been recovered.

Against the paper's *threat model* (no oracle access) this attack is not
available; it is included to quantify how many I/O queries an oracle-equipped
adversary would need, which is a useful hardness measure for the generated
designs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..logic.isop import isop
from ..logic.truthtable import TruthTable
from ..netlist.netlist import CONST0_NET, CONST1_NET, Netlist
from ..sat.cnf import Cnf
from ..sat.solver import SatSolver
from ..techmap.mapper import CamouflagedMapping

__all__ = ["OracleGuidedResult", "OracleGuidedAttack", "attack_mapping"]

#: Type of the black-box oracle: input word -> output word.
Oracle = Callable[[int], int]


@dataclass
class OracleGuidedResult:
    """Outcome of the oracle-guided attack."""

    success: bool
    #: Recovered configuration (instance -> configured function), when successful.
    configuration: Dict[str, TruthTable] = field(default_factory=dict)
    #: The distinguishing inputs queried, in order.
    queries: List[int] = field(default_factory=list)
    #: The recovered word-level function (input word -> output word).
    recovered_function: List[int] = field(default_factory=list)

    @property
    def num_queries(self) -> int:
        """Number of oracle queries (DIPs) the attack needed."""
        return len(self.queries)


class OracleGuidedAttack:
    """DIP-based SAT attack on a camouflaged netlist."""

    def __init__(
        self,
        netlist: Netlist,
        instance_plausible: Mapping[str, Sequence[TruthTable]],
        max_queries: int = 256,
    ):
        self._netlist = netlist
        self._plausible = {
            name: list(dict.fromkeys(functions))
            for name, functions in instance_plausible.items()
        }
        for name, functions in self._plausible.items():
            if not functions:
                raise ValueError(f"instance {name!r} has an empty plausible set")
        self._max_queries = max_queries
        self._num_inputs = len(netlist.primary_inputs)
        self._num_outputs = len(netlist.primary_outputs)
        self._order = netlist.topological_order()

        # Persistent CNF: two configuration copies plus constraints added as
        # the attack learns oracle responses.
        self._cnf = Cnf()
        self._selectors_a = self._allocate_selectors("a")
        self._selectors_b = self._allocate_selectors("b")

    # -------------------------------------------------------------- #
    # Encoding helpers
    # -------------------------------------------------------------- #
    def _allocate_selectors(self, tag: str) -> Dict[Tuple[str, int], int]:
        selectors: Dict[Tuple[str, int], int] = {}
        for name, functions in self._plausible.items():
            literals = []
            for index in range(len(functions)):
                variable = self._cnf.new_var(f"{tag}.cfg.{name}.{index}")
                selectors[(name, index)] = variable
                literals.append(variable)
            self._cnf.add_clause(literals)
            for first, second in itertools.combinations(literals, 2):
                self._cnf.add_clause([-first, -second])
        return selectors

    def _encode_copy(
        self,
        selectors: Dict[Tuple[str, int], int],
        input_literals: Dict[str, int],
    ) -> Dict[str, int]:
        """Encode one evaluation of the circuit under a configuration copy."""
        cnf = self._cnf
        net_literal: Dict[str, int] = dict(input_literals)
        for instance in self._order:
            output_var = cnf.new_var()
            inputs = [net_literal[net] for net in instance.inputs]
            functions = self._plausible.get(instance.name)
            if functions is None:
                self._encode_guarded(None, self._netlist.library[instance.cell].function,
                                     inputs, output_var)
            else:
                for index, function in enumerate(functions):
                    self._encode_guarded(selectors[(instance.name, index)], function,
                                         inputs, output_var)
            net_literal[instance.output] = output_var
        return net_literal

    def _encode_guarded(
        self,
        selector: Optional[int],
        function: TruthTable,
        input_literals: Sequence[int],
        output_literal: int,
    ) -> None:
        guard = [] if selector is None else [-selector]
        if function.is_constant_zero():
            self._cnf.add_clause(guard + [-output_literal])
            return
        if function.is_constant_one():
            self._cnf.add_clause(guard + [output_literal])
            return
        for cube in isop(function):
            clause = list(guard) + [output_literal]
            for variable, positive in cube.literals():
                literal = input_literals[variable]
                clause.append(-literal if positive else literal)
            self._cnf.add_clause(clause)
        for cube in isop(~function):
            clause = list(guard) + [-output_literal]
            for variable, positive in cube.literals():
                literal = input_literals[variable]
                clause.append(-literal if positive else literal)
            self._cnf.add_clause(clause)

    def _constant_inputs(self, word: int) -> Dict[str, int]:
        """Input literals for a fixed input word (plus constant nets)."""
        true_var = self._cnf.new_var()
        self._cnf.add_clause([true_var])
        literals = {CONST1_NET: true_var, CONST0_NET: -true_var}
        for position, net in enumerate(self._netlist.primary_inputs):
            literals[net] = true_var if (word >> position) & 1 else -true_var
        return literals

    def _free_inputs(self) -> Dict[str, int]:
        """Fresh input variables shared by both configuration copies."""
        true_var = self._cnf.new_var()
        self._cnf.add_clause([true_var])
        literals = {CONST1_NET: true_var, CONST0_NET: -true_var}
        for net in self._netlist.primary_inputs:
            literals[net] = self._cnf.new_var()
        return literals

    # -------------------------------------------------------------- #
    # The DIP loop
    # -------------------------------------------------------------- #
    def run(self, oracle: Oracle) -> OracleGuidedResult:
        """Run the attack against a black-box oracle."""
        queries: List[int] = []

        while len(queries) < self._max_queries:
            dip = self._find_distinguishing_input()
            if dip is None:
                break
            response = oracle(dip)
            queries.append(dip)
            self._constrain_to_observation(dip, response)
        else:
            return OracleGuidedResult(False, queries=queries)

        configuration = self._extract_configuration()
        if configuration is None:
            return OracleGuidedResult(False, queries=queries)
        recovered = self._simulate_configuration(configuration)
        success = all(
            recovered[word] == oracle(word) for word in range(1 << self._num_inputs)
        )
        return OracleGuidedResult(
            success,
            configuration=configuration,
            queries=queries,
            recovered_function=recovered,
        )

    def _find_distinguishing_input(self) -> Optional[int]:
        """SAT query: an input where two consistent configurations differ."""
        cnf_size_before = len(self._cnf.clauses)
        inputs = self._free_inputs()
        nets_a = self._encode_copy(self._selectors_a, inputs)
        nets_b = self._encode_copy(self._selectors_b, inputs)
        difference = []
        for net in self._netlist.primary_outputs:
            diff = self._cnf.new_var()
            a, b = nets_a[net], nets_b[net]
            self._cnf.add_clause([-diff, a, b])
            self._cnf.add_clause([-diff, -a, -b])
            self._cnf.add_clause([diff, -a, b])
            self._cnf.add_clause([diff, a, -b])
            difference.append(diff)
        self._cnf.add_clause(difference)

        result = SatSolver(self._cnf).solve()
        # The miter copy is one-shot: whatever the outcome, remove it so the
        # persistent formula only accumulates oracle observations.
        del self._cnf.clauses[cnf_size_before:]
        if not result.satisfiable:
            return None
        word = 0
        for position, net in enumerate(self._netlist.primary_inputs):
            if result.model.get(inputs[net], False):
                word |= 1 << position
        return word

    def _constrain_to_observation(self, word: int, response: int) -> None:
        """Both configuration copies must reproduce the observed I/O pair."""
        for selectors in (self._selectors_a, self._selectors_b):
            nets = self._encode_copy(selectors, self._constant_inputs(word))
            for position, net in enumerate(self._netlist.primary_outputs):
                literal = nets[net]
                if (response >> position) & 1:
                    self._cnf.add_clause([literal])
                else:
                    self._cnf.add_clause([-literal])

    def _extract_configuration(self) -> Optional[Dict[str, TruthTable]]:
        result = SatSolver(self._cnf).solve()
        if not result.satisfiable:
            return None
        configuration: Dict[str, TruthTable] = {}
        for (name, index), variable in self._selectors_a.items():
            if result.model.get(variable, False):
                configuration[name] = self._plausible[name][index]
        return configuration

    def _simulate_configuration(self, configuration: Dict[str, TruthTable]) -> List[int]:
        from ..netlist.simulate import extract_function

        function = extract_function(self._netlist, cell_functions=configuration)
        return function.lookup_table()


def attack_mapping(
    mapping: CamouflagedMapping,
    true_select: int,
    max_queries: int = 256,
) -> OracleGuidedResult:
    """Run the oracle-guided attack against a Phase III mapping.

    The oracle is the camouflaged netlist configured for ``true_select`` —
    i.e. the chip as manufactured for one particular viable function.
    """
    from ..netlist.simulate import extract_function

    configuration = mapping.configuration_for_select(true_select)
    truth = extract_function(
        mapping.netlist, cell_functions=configuration.as_cell_functions()
    ).lookup_table()

    plausible = {
        name: list(mapping.plausible_functions_of(name))
        for name in mapping.camouflaged_instances()
    }
    attack = OracleGuidedAttack(mapping.netlist, plausible, max_queries=max_queries)
    return attack.run(lambda word: truth[word])

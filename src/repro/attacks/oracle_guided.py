"""Oracle-guided (SAT) decamouflaging attack.

The paper's introduction notes that when an adversary can observe the
circuit's true input/output behaviour (e.g. through a scan chain), SAT-based
attacks in the style of references [11] and [12] apply.  This module
implements that stronger adversary as an extension of the reproduction: the
classic *distinguishing-input-pattern* (DIP) loop.

The attacker holds the camouflaged netlist (with the plausible-function
family of every camouflaged instance) and black-box access to the configured
chip.  Each iteration asks a SAT solver for an input on which two
still-consistent configurations disagree, queries the oracle on that input,
and constrains all future configurations to agree with the observed output.
When no distinguishing input remains, every surviving configuration is
functionally equivalent to the chip and the function has been recovered.

Against the paper's *threat model* (no oracle access) this attack is not
available; it is included to quantify how many I/O queries an oracle-equipped
adversary would need, which is a useful hardness measure for the generated
designs.

Incremental encoding
--------------------

The whole attack runs on **one** incremental :class:`~repro.sat.solver.
SatSolver` that follows the persistent CNF:

* The two-copy *miter* (both configuration copies evaluated on a shared
  free input word, plus the "some output differs" constraint) is encoded
  **once** at construction time.  The difference constraint is guarded by an
  *activation literal* ``act``: the clause is ``(-act v diff_1 v ... v
  diff_n)``, so it only bites when ``act`` is assumed.
* Each DIP query is then simply ``solve(assumptions=[act])`` — no clauses
  are added and **no variables are allocated**, so the formula does not grow
  at all for the query half of the loop.
* Each oracle observation appends a bounded number of clauses: both copies
  are evaluated at the (constant) queried word and their outputs pinned to
  the observed response.  Constant inputs reuse one persistent
  constant-true variable allocated in ``__init__``.
* The final configuration extraction is ``solve(assumptions=[-act])``,
  which disables the miter and asks only for consistency with every
  recorded observation.

Learned clauses, activity, and phases therefore carry over across the whole
DIP loop instead of being recomputed from scratch each iteration, and the
per-iteration variable footprint is bounded by the observation encoding (the
old implementation leaked the miter variables of every iteration).

Query-count invariance: the rewrite does not change what a DIP is, only how
cheaply one is found, so on the seed mapping workload the DIP sequence,
``num_queries``, and the recovered function are unchanged, and every seed
workload stays within its asserted query budget (the regression tests pin
this).  On degenerate toy cases the warm solver may find a *more*
informative DIP and finish in fewer queries.

Fuzz-before-SAT (presampling)
-----------------------------

``presample=N`` queries the oracle on ``N`` seeded random input words (in
one batch, answered by packed word-parallel simulation when the oracle is a
configured netlist) *before* the DIP loop and constrains both configuration
copies with the observed responses — the classic random-simulation
front-end of SAT-based attacks.  Cheap observations kill most of the
configuration space, so far fewer (and far cheaper) miter calls remain; the
recovered function is identical, but the DIP sequence is not.  Constructing
:class:`OracleGuidedAttack` directly still defaults to ``presample=0`` (the
classic cold transcript); the :func:`attack_mapping` entry point follows the
fuzz default — presampling **on** unless the ``REPRO_FUZZ`` environment
variable opts out — and the regression tests pin both transcript shapes
explicitly.  Every DIP and
presample word is recorded in a :class:`~repro.sim.patterns.ReplayBuffer`
(``OracleGuidedAttack.replay``) so callers can reuse the distinguishing
patterns across attacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..logic.truthtable import TruthTable
from ..netlist.netlist import CONST0_NET, CONST1_NET, Netlist
from ..sat.cnf import Cnf
from ..sat.equivalence import add_difference_miter
from ..sat.solver import SatSolver, SolveBudget
from ..sat.tseitin import add_exactly_one, encode_camouflaged_copy
from ..sim.patterns import RandomPatternSource, ReplayBuffer
from ..sim.prefilter import fuzz_enabled
from ..techmap.mapper import CamouflagedMapping

__all__ = [
    "OracleGuidedResult",
    "OracleGuidedAttack",
    "attack_mapping",
    "attack_netlist",
    "attack_windowed",
]

#: Type of the black-box oracle: input word -> output word.
Oracle = Callable[[int], int]

#: Type of the batched oracle: input words -> output words (one call).
BatchOracle = Callable[[Sequence[int]], List[int]]


@dataclass
class OracleGuidedResult:
    """Outcome of the oracle-guided attack."""

    success: bool
    #: Recovered configuration (instance -> configured function), when successful.
    configuration: Dict[str, TruthTable] = field(default_factory=dict)
    #: The distinguishing inputs queried, in order.
    queries: List[int] = field(default_factory=list)
    #: The recovered word-level function (input word -> output word).
    recovered_function: List[int] = field(default_factory=list)
    #: Cumulative statistics of the single incremental solver run by the attack.
    solver_stats: Dict[str, int] = field(default_factory=dict)
    #: Random words queried up-front by the fuzz presampling phase, in order.
    presample_queries: List[int] = field(default_factory=list)
    #: True when a solve budget ran out before the attack could finish.  The
    #: result still carries the partial progress (presample + DIP queries so
    #: far, cumulative solver statistics), and the attack object's replay
    #: buffer keeps every observed word, so a re-run with a larger budget
    #: starts from real information rather than from scratch.
    timed_out: bool = False

    @property
    def num_queries(self) -> int:
        """Number of oracle queries (DIPs) the attack needed."""
        return len(self.queries)

    @property
    def total_oracle_queries(self) -> int:
        """All oracle calls: presample observations plus DIPs."""
        return len(self.presample_queries) + len(self.queries)


class OracleGuidedAttack:
    """DIP-based SAT attack on a camouflaged netlist (one incremental solver).

    Works at any input width: the miter, the observation encoding, and the
    DIP loop are all linear in the circuit size.  Only the final success
    audit distinguishes widths — up to :data:`EXACT_RECOVERY_LIMIT` inputs
    the recovered configuration is checked against the oracle exhaustively
    (and ``recovered_function`` is the full lookup table, exactly as
    before); beyond it the audit is a seeded random packed cross-check of
    ``verify_samples`` words plus every word already shown to the oracle,
    and ``recovered_function`` stays empty (a ``2**n``-entry table would be
    exponential).  The SAT-attack guarantee — miter UNSAT means every
    surviving configuration agrees with the oracle everywhere — is what
    carries the wide case; the sampled audit is a defence-in-depth check.
    """

    #: Input counts up to this bound get the exhaustive recovery audit.
    EXACT_RECOVERY_LIMIT = 16

    def __init__(
        self,
        netlist: Netlist,
        instance_plausible: Mapping[str, Sequence[TruthTable]],
        max_queries: int = 256,
        presample: int = 0,
        presample_seed: int = 101,
        verify_samples: int = 256,
        verify_seed: int = 131,
        budget: Optional[SolveBudget] = None,
    ):
        self._netlist = netlist
        self._budget = budget
        self._plausible = {
            name: list(dict.fromkeys(functions))
            for name, functions in instance_plausible.items()
        }
        for name, functions in self._plausible.items():
            if not functions:
                raise ValueError(f"instance {name!r} has an empty plausible set")
        self._max_queries = max_queries
        self._presample = presample
        self._presample_seed = presample_seed
        self._verify_samples = verify_samples
        self._verify_seed = verify_seed
        #: Every word shown to the oracle (presample + DIPs), for replay.
        self.replay = ReplayBuffer()
        self._num_inputs = len(netlist.primary_inputs)
        self._num_outputs = len(netlist.primary_outputs)
        self._order = netlist.topological_order()

        # Persistent CNF followed by the single incremental solver.  The
        # solver is constructed exactly once; everything below and every
        # later observation flows into it through the Cnf listener hook.
        self._cnf = Cnf()
        self._solver = SatSolver(self._cnf, follow=True)

        # One persistent constant-true variable, reused by every constant
        # input encoding (the old code allocated a fresh one per call).
        self._true_var = self._cnf.new_var("const.true")
        self._cnf.add_clause([self._true_var])

        self._selectors_a = self._allocate_selectors("a")
        self._selectors_b = self._allocate_selectors("b")

        # The miter: both copies over one shared set of free input variables,
        # encoded once.  The "outputs differ" clause is guarded by an
        # activation literal so observation-consistency queries can disable it.
        self._input_vars = {
            net: self._cnf.new_var(f"in.{net}") for net in netlist.primary_inputs
        }
        free_inputs = {CONST1_NET: self._true_var, CONST0_NET: -self._true_var}
        free_inputs.update(self._input_vars)
        nets_a = self._encode_copy(self._selectors_a, free_inputs)
        nets_b = self._encode_copy(self._selectors_b, free_inputs)
        self._activation = self._cnf.new_var("miter.enable")
        add_difference_miter(
            self._cnf,
            [(nets_a[net], nets_b[net]) for net in self._netlist.primary_outputs],
            activation=self._activation,
        )

    @property
    def solver(self) -> SatSolver:
        """The single incremental solver driving the whole attack."""
        return self._solver

    @property
    def num_cnf_vars(self) -> int:
        """Current size of the persistent formula (diagnostics/tests)."""
        return self._cnf.num_vars

    # -------------------------------------------------------------- #
    # Encoding helpers
    # -------------------------------------------------------------- #
    def _allocate_selectors(self, tag: str) -> Dict[Tuple[str, int], int]:
        selectors: Dict[Tuple[str, int], int] = {}
        for name, functions in self._plausible.items():
            literals = []
            for index in range(len(functions)):
                variable = self._cnf.new_var(f"{tag}.cfg.{name}.{index}")
                selectors[(name, index)] = variable
                literals.append(variable)
            add_exactly_one(self._cnf, literals)
        return selectors

    def _encode_copy(
        self,
        selectors: Dict[Tuple[str, int], int],
        input_literals: Dict[str, int],
    ) -> Dict[str, int]:
        """Encode one evaluation of the circuit under a configuration copy."""
        return encode_camouflaged_copy(
            self._cnf, self._netlist, self._order, self._plausible,
            selectors, input_literals,
        )

    def _constant_inputs(self, word: int) -> Dict[str, int]:
        """Input literals for a fixed input word (plus constant nets).

        Reuses the persistent constant-true variable — no new variables or
        clauses are allocated here.
        """
        literals = {CONST1_NET: self._true_var, CONST0_NET: -self._true_var}
        for position, net in enumerate(self._netlist.primary_inputs):
            literals[net] = self._true_var if (word >> position) & 1 else -self._true_var
        return literals

    # -------------------------------------------------------------- #
    # The DIP loop
    # -------------------------------------------------------------- #
    def run(
        self, oracle: Oracle, oracle_batch: Optional[BatchOracle] = None
    ) -> OracleGuidedResult:
        """Run the attack against a black-box oracle.

        ``oracle_batch`` optionally answers many words in one call (e.g. a
        packed word-parallel simulation of the configured chip); the
        presample phase and the final sampled audit use it when present, so
        wide-netlist attacks never pay per-word Python dispatch for bulk
        queries.  The transcript is identical with or without it.
        """
        queries: List[int] = []
        presample_queries = self._run_presample(oracle, oracle_batch)
        # With the whole input space observed, both copies are pinned to the
        # oracle everywhere, so the miter is unsatisfiable by construction —
        # the (expensive) UNSAT proof is skipped, not just accelerated.
        observed_all = len(presample_queries) == (1 << self._num_inputs)

        while not observed_all:
            dip, unknown = self._find_distinguishing_input()
            if unknown:
                # Budget exhausted mid-search: report the partial progress
                # instead of hanging.  Everything observed so far stays in
                # the replay buffer and the solver's learned clauses.
                return OracleGuidedResult(
                    False,
                    queries=queries,
                    solver_stats=self._solver.stats(),
                    presample_queries=presample_queries,
                    timed_out=True,
                )
            if dip is None:
                break
            if len(queries) >= self._max_queries:
                # Distinguishing inputs remain but the query budget is spent.
                return OracleGuidedResult(
                    False,
                    queries=queries,
                    solver_stats=self._solver.stats(),
                    presample_queries=presample_queries,
                )
            response = oracle(dip)
            queries.append(dip)
            self.replay.add(dip)
            self._constrain_to_observation(dip, response)

        configuration, unknown = self._extract_configuration()
        if configuration is None:
            return OracleGuidedResult(
                False,
                queries=queries,
                solver_stats=self._solver.stats(),
                presample_queries=presample_queries,
                timed_out=unknown,
            )
        if self._num_inputs <= self.EXACT_RECOVERY_LIMIT:
            recovered = self._simulate_configuration(configuration)
            if oracle_batch is not None:
                words = list(range(1 << self._num_inputs))
                success = recovered == list(oracle_batch(words))
            else:
                success = all(
                    recovered[word] == oracle(word)
                    for word in range(1 << self._num_inputs)
                )
        else:
            # Wide circuit: the exhaustive table is exponential.  Audit the
            # recovered configuration on seeded random words plus every word
            # already shown to the oracle (packed, one simulation pass).
            recovered = []
            success = self._sampled_audit(configuration, oracle, oracle_batch)
        return OracleGuidedResult(
            success,
            configuration=configuration,
            queries=queries,
            recovered_function=recovered,
            solver_stats=self._solver.stats(),
            presample_queries=presample_queries,
        )

    def _sampled_audit(
        self,
        configuration: Dict[str, TruthTable],
        oracle: Oracle,
        oracle_batch: Optional[BatchOracle],
    ) -> bool:
        """Randomised recovery audit for wide circuits (packed cross-check)."""
        from ..sim.engine import NetlistSimulator

        words = list(self.replay.words())
        if self._verify_samples > 0:
            source = RandomPatternSource(self._verify_seed)
            seen = set(words)
            for word in source.words(self._num_inputs, self._verify_samples):
                if word not in seen:
                    seen.add(word)
                    words.append(word)
        if not words:
            return True
        recovered = NetlistSimulator(
            self._netlist, cell_functions=configuration
        ).simulate_words(words)
        if oracle_batch is not None:
            expected = list(oracle_batch(words))
        else:
            expected = [oracle(word) for word in words]
        return recovered == expected

    def _run_presample(
        self, oracle: Oracle, oracle_batch: Optional[BatchOracle] = None
    ) -> List[int]:
        """Fuzz phase: constrain the space with random oracle observations.

        The words are drawn deterministically from the presample seed
        (distinct, capped at the full input space) and every observation is
        encoded exactly like a DIP observation.  With the whole input space
        sampled the subsequent miter query is immediately unsatisfiable and
        the attack degenerates to (cheap) exhaustive oracle reading.
        """
        if self._presample <= 0:
            return []
        source = RandomPatternSource(self._presample_seed)
        words = source.words(self._num_inputs, self._presample, distinct=True)
        if oracle_batch is not None and words:
            responses = list(oracle_batch(words))
        else:
            responses = [oracle(word) for word in words]
        for word, response in zip(words, responses):
            self.replay.add(word)
            self._constrain_to_observation(word, response)
        return words

    def _find_distinguishing_input(self) -> Tuple[Optional[int], bool]:
        """SAT query: an input where two consistent configurations differ.

        The miter is already encoded; this is a pure assumption query under
        the activation literal and adds nothing to the formula.  Returns
        ``(word, False)`` for a DIP, ``(None, False)`` when none remains,
        and ``(None, True)`` when the solve budget ran out.
        """
        result = self._solver.solve(assumptions=[self._activation], budget=self._budget)
        if result.unknown:
            return None, True
        if not result.satisfiable:
            return None, False
        word = 0
        for position, net in enumerate(self._netlist.primary_inputs):
            if result.model.get(self._input_vars[net], False):
                word |= 1 << position
        return word, False

    def _constrain_to_observation(self, word: int, response: int) -> None:
        """Both configuration copies must reproduce the observed I/O pair."""
        inputs = self._constant_inputs(word)
        for selectors in (self._selectors_a, self._selectors_b):
            nets = self._encode_copy(selectors, inputs)
            for position, net in enumerate(self._netlist.primary_outputs):
                literal = nets[net]
                if (response >> position) & 1:
                    self._cnf.add_clause([literal])
                else:
                    self._cnf.add_clause([-literal])

    def _extract_configuration(
        self,
    ) -> Tuple[Optional[Dict[str, TruthTable]], bool]:
        # Disable the miter: only the accumulated observations constrain the
        # configuration copies here.  The second element reports a budget
        # exhaustion (configuration unknown, not inconsistent).
        result = self._solver.solve(assumptions=[-self._activation], budget=self._budget)
        if result.unknown:
            return None, True
        if not result.satisfiable:
            return None, False
        configuration: Dict[str, TruthTable] = {}
        for (name, index), variable in self._selectors_a.items():
            if result.model.get(variable, False):
                configuration[name] = self._plausible[name][index]
        return configuration, False

    def _simulate_configuration(self, configuration: Dict[str, TruthTable]) -> List[int]:
        from ..netlist.simulate import extract_function

        function = extract_function(self._netlist, cell_functions=configuration)
        return function.lookup_table()


DEFAULT_PRESAMPLE = 32


def attack_mapping(
    mapping: CamouflagedMapping,
    true_select: int,
    max_queries: int = 256,
    presample: Optional[int] = None,
    jobs: int = 1,
    budget: Optional[SolveBudget] = None,
) -> OracleGuidedResult:
    """Run the oracle-guided attack against a Phase III mapping.

    The oracle is the camouflaged netlist configured for ``true_select`` —
    i.e. the chip as manufactured for one particular viable function.  All
    oracle queries are answered from one packed word-parallel extraction of
    the configured netlist (a single batch, not ``2**n`` row simulations);
    with ``jobs > 1`` that exhaustive batch is sharded over the worker pool
    (:func:`repro.sim.shard.sharded_extract_function`), so wide workloads
    presample at multi-core speed.  The recovered function, the presample
    word set, and the DIP sequence are identical for every ``jobs`` value.

    ``presample`` controls the fuzz-before-SAT presampling phase (see the
    module docstring); ``None`` resolves it from the fuzz default —
    presampling is on (:data:`DEFAULT_PRESAMPLE` words) unless ``REPRO_FUZZ``
    opts out, in which case the classic cold-DIP transcript is preserved.
    """
    from ..sim.shard import sharded_extract_function

    configuration = mapping.configuration_for_select(true_select)
    truth = sharded_extract_function(
        mapping.netlist,
        cell_functions=configuration.as_cell_functions(),
        jobs=jobs,
    ).lookup_table()

    if presample is None:
        presample = DEFAULT_PRESAMPLE if fuzz_enabled(None) else 0
    if budget is None:
        budget = SolveBudget.from_environment()
    plausible = {
        name: list(mapping.plausible_functions_of(name))
        for name in mapping.camouflaged_instances()
    }
    attack = OracleGuidedAttack(
        mapping.netlist, plausible, max_queries=max_queries, presample=presample,
        budget=budget,
    )
    return attack.run(lambda word: truth[word])


def attack_netlist(
    netlist: Netlist,
    instance_plausible: Mapping[str, Sequence[TruthTable]],
    true_configuration: Mapping[str, TruthTable],
    max_queries: int = 256,
    presample: Optional[int] = None,
    verify_samples: int = 256,
    jobs: int = 1,
    budget: Optional[SolveBudget] = None,
) -> OracleGuidedResult:
    """Oracle-guided attack on an arbitrary-width camouflaged netlist.

    The oracle is the netlist configured with ``true_configuration`` (the
    chip as manufactured), answered by packed word-parallel simulation: bulk
    phases (presampling, the final audit) go through one batched simulation
    call, DIP queries through single-word packed passes.  Unlike
    :func:`attack_mapping` no exhaustive truth table is ever built, so
    stitched windowed netlists with dozens of inputs attack at the same
    per-query cost as S-boxes.  ``jobs`` shards the bulk simulation batches
    over the worker pool when they are wide enough to amortise it.
    """
    from ..sim.engine import NetlistSimulator, _word_from_lanes
    from ..sim.shard import MIN_SHARD_PATTERNS, sharded_output_lanes
    from ..sim.patterns import PatternBatch

    configuration = dict(true_configuration)
    simulator = NetlistSimulator(netlist, cell_functions=configuration)

    def oracle(word: int) -> int:
        return simulator.simulate_words([word])[0]

    def oracle_batch(words: Sequence[int]) -> List[int]:
        words = list(words)
        if not words:
            return []
        if jobs > 1 and len(words) >= 2 * MIN_SHARD_PATTERNS:
            batch = PatternBatch.from_words(
                len(netlist.primary_inputs), words
            )
            lanes = sharded_output_lanes(
                netlist, batch, cell_functions=configuration, jobs=jobs
            )
            return [
                _word_from_lanes(lanes, position)
                for position in range(batch.num_patterns)
            ]
        return simulator.simulate_words(words)

    if presample is None:
        presample = DEFAULT_PRESAMPLE if fuzz_enabled(None) else 0
    if budget is None:
        budget = SolveBudget.from_environment()
    attack = OracleGuidedAttack(
        netlist,
        instance_plausible,
        max_queries=max_queries,
        presample=presample,
        verify_samples=verify_samples,
        budget=budget,
    )
    return attack.run(oracle, oracle_batch=oracle_batch)


def attack_windowed(
    result,
    max_queries: int = 256,
    presample: Optional[int] = None,
    verify_samples: int = 256,
    jobs: int = 1,
    budget: Optional[SolveBudget] = None,
) -> OracleGuidedResult:
    """Attack a stitched windowed obfuscation end-to-end.

    ``result`` is a :class:`~repro.flow.target.WindowedObfuscationResult`;
    the adversary sees the stitched netlist and the plausible family of
    every camouflaged cell, and queries the chip configured with the true
    per-window functions.
    """
    return attack_netlist(
        result.netlist,
        result.instance_plausible(),
        result.true_configuration,
        max_queries=max_queries,
        presample=presample,
        verify_samples=verify_samples,
        jobs=jobs,
        budget=budget,
    )

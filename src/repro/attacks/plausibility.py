"""Designer-side validation: every viable function must remain realisable.

This is the reproduction of the paper's ModelSim check ("we verify that the
resulting circuits can implement each of the viable functions when
appropriate gate functions are supplied"): for every select word the
technology mapper's per-instance configurations are applied to the
camouflaged netlist and the resulting function is compared — exhaustively —
against the corresponding viable function under the chosen pin assignment.
A SAT-based variant using the miter equivalence checker is also provided.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..logic.boolfunc import BoolFunction
from ..merge.merged import MergedDesign
from ..netlist.simulate import extract_function
from ..sat.equivalence import check_netlist_function
from ..techmap.mapper import CamouflagedMapping

__all__ = ["PlausibilityReport", "verify_viable_functions"]


@dataclass
class PlausibilityReport:
    """Result of checking every viable function against the mapped circuit."""

    total: int
    realised: List[int] = field(default_factory=list)
    failed: List[int] = field(default_factory=list)
    details: Dict[int, str] = field(default_factory=dict)

    @property
    def all_realisable(self) -> bool:
        """True when every viable function can be configured."""
        return not self.failed and len(self.realised) == self.total

    def summary(self) -> str:
        """One-line human-readable summary."""
        status = "OK" if self.all_realisable else "FAILED"
        return (
            f"{status}: {len(self.realised)}/{self.total} viable functions realisable "
            f"by the camouflaged circuit"
        )


def verify_viable_functions(
    mapping: CamouflagedMapping,
    design: MergedDesign,
    use_sat: bool = False,
) -> PlausibilityReport:
    """Check that the camouflaged circuit can realise every viable function.

    ``use_sat=False`` (default) compares exhaustively simulated truth tables;
    ``use_sat=True`` runs a miter-based equivalence check instead, which
    exercises the SAT substrate and scales to wider circuits.
    """
    report = PlausibilityReport(total=len(design.viable_functions))
    for select_value in range(len(design.viable_functions)):
        expected = design.function_for_select(select_value)
        configuration = mapping.configuration_for_select(select_value)
        if use_sat:
            outcome = check_netlist_function(
                mapping.netlist, expected, cell_functions=configuration.as_cell_functions()
            )
            matches = bool(outcome)
            detail = "" if matches else f"counterexample {outcome.counterexample}"
        else:
            realised = extract_function(
                mapping.netlist, cell_functions=configuration.as_cell_functions()
            )
            matches = realised.lookup_table() == expected.lookup_table()
            detail = "" if matches else "truth tables differ"
        if matches:
            report.realised.append(select_value)
        else:
            report.failed.append(select_value)
            report.details[select_value] = detail
    return report

"""Designer-side validation: every viable function must remain realisable.

This is the reproduction of the paper's ModelSim check ("we verify that the
resulting circuits can implement each of the viable functions when
appropriate gate functions are supplied"): for every select word the
technology mapper's per-instance configurations are applied to the
camouflaged netlist and the resulting function is compared — exhaustively —
against the corresponding viable function under the chosen pin assignment.

The exhaustive comparison runs on the packed word-parallel engine: the
whole select space is swept in **one** simulation pass over the combined
(data inputs × select word) pattern space
(:meth:`~repro.techmap.mapper.CamouflagedMapping.realised_lookup_tables`),
instead of re-simulating the netlist once per configuration.  A SAT-based
variant using the miter equivalence checker is also provided; with
``prefilter`` enabled it fuzz-tests each configuration before falling back
to the solver (fuzz-before-SAT), which never changes a verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..logic.boolfunc import BoolFunction
from ..merge.merged import MergedDesign
from ..sat.equivalence import check_netlist_function
from ..techmap.mapper import CamouflagedMapping

__all__ = ["PlausibilityReport", "verify_viable_functions"]


@dataclass
class PlausibilityReport:
    """Result of checking every viable function against the mapped circuit."""

    total: int
    realised: List[int] = field(default_factory=list)
    failed: List[int] = field(default_factory=list)
    details: Dict[int, str] = field(default_factory=dict)

    @property
    def all_realisable(self) -> bool:
        """True when every viable function can be configured."""
        return not self.failed and len(self.realised) == self.total

    def summary(self) -> str:
        """One-line human-readable summary."""
        status = "OK" if self.all_realisable else "FAILED"
        return (
            f"{status}: {len(self.realised)}/{self.total} viable functions realisable "
            f"by the camouflaged circuit"
        )


def verify_viable_functions(
    mapping: CamouflagedMapping,
    design: MergedDesign,
    use_sat: bool = False,
    prefilter: Optional[bool] = None,
    jobs: int = 1,
) -> PlausibilityReport:
    """Check that the camouflaged circuit can realise every viable function.

    ``use_sat=False`` (default) compares exhaustively simulated truth tables
    — all select configurations swept packed (select-dimension shards over
    ``jobs`` workers when the combined width is large); ``use_sat=True``
    runs a miter-based equivalence check instead, which exercises the SAT
    substrate and scales to wider circuits (``prefilter`` adds the
    fuzz-before-SAT fast path there).
    """
    report = PlausibilityReport(total=len(design.viable_functions))
    realised_tables: Optional[List[List[int]]] = None
    if not use_sat:
        realised_tables = mapping.realised_lookup_tables(jobs=jobs)
    for select_value in range(len(design.viable_functions)):
        expected = design.function_for_select(select_value)
        if use_sat:
            configuration = mapping.configuration_for_select(select_value)
            outcome = check_netlist_function(
                mapping.netlist,
                expected,
                cell_functions=configuration.as_cell_functions(),
                prefilter=prefilter,
            )
            matches = bool(outcome)
            detail = "" if matches else f"counterexample {outcome.counterexample}"
        else:
            matches = realised_tables[select_value] == expected.lookup_table()
            detail = "" if matches else "truth tables differ"
        if matches:
            report.realised.append(select_value)
        else:
            report.failed.append(select_value)
            report.details[select_value] = detail
    return report

"""Attacker-side analysis: which candidate functions are plausible?

The adversary of the paper images the die, recognises every (look-alike)
cell and its connections, and knows the plausible-function family of each
camouflaged cell — but not which member is actually implemented.  For a
candidate function ``f`` from her pre-existing list of viable functions she
asks: *is there an assignment of plausible functions to the camouflaged
instances that makes the circuit implement ``f``?*  This is the QBF-style
query of the paper (reference [14]) specialised to combinational blocks with
a handful of inputs, which lets us unroll the universal quantification over
the inputs and answer it with a single SAT call.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..camo.library import CamouflageLibrary
from ..logic.boolfunc import BoolFunction
from ..logic.truthtable import TruthTable
from ..netlist.netlist import CONST0_NET, CONST1_NET, Netlist
from ..sat.cnf import Cnf
from ..sat.solver import SatSolver
from ..techmap.mapper import CamouflagedMapping

__all__ = [
    "DecamouflageResult",
    "PlausibleFunctionOracle",
    "is_function_plausible",
    "plausible_viable_functions",
]


@dataclass
class DecamouflageResult:
    """Result of one plausibility query."""

    plausible: bool
    #: When plausible, a witness configuration: instance name -> configured function.
    witness: Dict[str, TruthTable] = field(default_factory=dict)
    conflicts: int = 0

    def __bool__(self) -> bool:
        return self.plausible


class PlausibleFunctionOracle:
    """SAT-based oracle answering "can this circuit implement function f?".

    The oracle is built once per camouflaged netlist; each query unrolls the
    circuit over all input words, shares the per-instance configuration
    variables across the unrolled copies, and constrains the outputs to match
    the candidate function.
    """

    def __init__(
        self,
        netlist: Netlist,
        instance_plausible: Mapping[str, Sequence[TruthTable]],
    ):
        self._netlist = netlist
        self._plausible = {
            name: list(dict.fromkeys(functions))
            for name, functions in instance_plausible.items()
        }
        for name, functions in self._plausible.items():
            if not functions:
                raise ValueError(f"instance {name!r} has an empty plausible set")

    @classmethod
    def from_mapping(cls, mapping: CamouflagedMapping) -> "PlausibleFunctionOracle":
        """Build the oracle an adversary would build from a mapped design."""
        plausible = {
            name: list(mapping.plausible_functions_of(name))
            for name in mapping.camouflaged_instances()
        }
        return cls(mapping.netlist, plausible)

    # -------------------------------------------------------------- #
    # Encoding
    # -------------------------------------------------------------- #
    def _encode(self, candidate: BoolFunction) -> Tuple[Cnf, Dict[Tuple[str, int], int]]:
        netlist = self._netlist
        num_inputs = len(netlist.primary_inputs)
        if candidate.num_inputs != num_inputs:
            raise ValueError(
                f"candidate has {candidate.num_inputs} inputs, circuit has {num_inputs}"
            )
        if candidate.num_outputs != len(netlist.primary_outputs):
            raise ValueError("candidate and circuit have different numbers of outputs")

        cnf = Cnf()
        selector_vars: Dict[Tuple[str, int], int] = {}
        for name, functions in self._plausible.items():
            literals = []
            for index in range(len(functions)):
                variable = cnf.new_var(f"cfg.{name}.{index}")
                selector_vars[(name, index)] = variable
                literals.append(variable)
            # Exactly one configuration per camouflaged instance.
            cnf.add_clause(literals)
            for first, second in itertools.combinations(literals, 2):
                cnf.add_clause([-first, -second])

        order = netlist.topological_order()
        for word in range(1 << num_inputs):
            net_literal: Dict[str, int] = {}
            true_var = cnf.new_var()
            cnf.add_clause([true_var])
            net_literal[CONST1_NET] = true_var
            net_literal[CONST0_NET] = -true_var
            for position, net in enumerate(netlist.primary_inputs):
                value = (word >> position) & 1
                net_literal[net] = true_var if value else -true_var

            for instance in order:
                output_var = cnf.new_var()
                net_literal[instance.output] = output_var
                input_literals = [net_literal[net] for net in instance.inputs]
                functions = self._plausible.get(instance.name)
                if functions is None:
                    # Not camouflaged: encode the library function directly.
                    self._encode_under_selector(
                        cnf, None, netlist.library[instance.cell].function,
                        input_literals, output_var,
                    )
                    continue
                for index, function in enumerate(functions):
                    selector = selector_vars[(instance.name, index)]
                    self._encode_under_selector(
                        cnf, selector, function, input_literals, output_var
                    )

            expected = candidate.evaluate_word(word)
            for position, net in enumerate(netlist.primary_outputs):
                literal = net_literal[net]
                if (expected >> position) & 1:
                    cnf.add_clause([literal])
                else:
                    cnf.add_clause([-literal])
        return cnf, selector_vars

    @staticmethod
    def _encode_under_selector(
        cnf: Cnf,
        selector: Optional[int],
        function: TruthTable,
        input_literals: Sequence[int],
        output_literal: int,
    ) -> None:
        """Encode ``selector -> (output == function(inputs))`` with fixed inputs.

        Because the inputs here are concrete literals (constants or other net
        variables), the implication is expressed cube-wise from the ISOP of
        the on-set and off-set, guarded by the selector.
        """
        from ..logic.isop import isop

        guard = [] if selector is None else [-selector]
        if function.is_constant_zero():
            cnf.add_clause(guard + [-output_literal])
            return
        if function.is_constant_one():
            cnf.add_clause(guard + [output_literal])
            return
        for cube in isop(function):
            clause = list(guard) + [output_literal]
            for variable, positive in cube.literals():
                literal = input_literals[variable]
                clause.append(-literal if positive else literal)
            cnf.add_clause(clause)
        for cube in isop(~function):
            clause = list(guard) + [-output_literal]
            for variable, positive in cube.literals():
                literal = input_literals[variable]
                clause.append(-literal if positive else literal)
            cnf.add_clause(clause)

    # -------------------------------------------------------------- #
    # Queries
    # -------------------------------------------------------------- #
    def is_plausible(self, candidate: BoolFunction) -> DecamouflageResult:
        """Can the camouflaged circuit implement the candidate function?"""
        cnf, selector_vars = self._encode(candidate)
        result = SatSolver(cnf).solve()
        if not result.satisfiable:
            return DecamouflageResult(False, conflicts=result.conflicts)
        witness: Dict[str, TruthTable] = {}
        for (name, index), variable in selector_vars.items():
            if result.model.get(variable, False):
                witness[name] = self._plausible[name][index]
        return DecamouflageResult(True, witness=witness, conflicts=result.conflicts)

    def is_plausible_under_any_interpretation(
        self,
        candidate: BoolFunction,
        max_permutations: Optional[int] = None,
    ) -> DecamouflageResult:
        """Check plausibility over all input/output pin interpretations.

        The adversary does not know which external wire carries which logical
        pin, so she must consider every input and output permutation of the
        candidate (Section III-B of the paper).  This is exponential in the
        pin count; ``max_permutations`` caps the number of interpretations
        tried (None means exhaustive).
        """
        tried = 0
        for input_perm in itertools.permutations(range(candidate.num_inputs)):
            for output_perm in itertools.permutations(range(candidate.num_outputs)):
                if max_permutations is not None and tried >= max_permutations:
                    return DecamouflageResult(False)
                tried += 1
                view = candidate.permute_inputs(list(input_perm)).permute_outputs(
                    list(output_perm)
                )
                outcome = self.is_plausible(view)
                if outcome.plausible:
                    return outcome
        return DecamouflageResult(False)


def is_function_plausible(
    mapping: CamouflagedMapping, candidate: BoolFunction
) -> DecamouflageResult:
    """Convenience wrapper: adversary query against a Phase III mapping."""
    oracle = PlausibleFunctionOracle.from_mapping(mapping)
    return oracle.is_plausible(candidate)


def plausible_viable_functions(
    mapping: CamouflagedMapping,
    viable_functions: Sequence[BoolFunction],
    assignment_views: Optional[Sequence[BoolFunction]] = None,
) -> List[bool]:
    """Evaluate the adversary's checklist: which viable functions are plausible?

    ``assignment_views`` optionally provides the pin-permuted view of each
    viable function (what the designer actually embedded); when omitted the
    functions are checked under the identity interpretation.
    """
    oracle = PlausibleFunctionOracle.from_mapping(mapping)
    views = assignment_views if assignment_views is not None else viable_functions
    return [bool(oracle.is_plausible(view)) for view in views]

"""Attacker-side analysis: which candidate functions are plausible?

The adversary of the paper images the die, recognises every (look-alike)
cell and its connections, and knows the plausible-function family of each
camouflaged cell — but not which member is actually implemented.  For a
candidate function ``f`` from her pre-existing list of viable functions she
asks: *is there an assignment of plausible functions to the camouflaged
instances that makes the circuit implement ``f``?*  This is the QBF-style
query of the paper (reference [14]) specialised to combinational blocks with
a handful of inputs, which lets us unroll the universal quantification over
the inputs and answer it with a single SAT call.

The oracle is incremental: the configuration selectors and the circuit
unrolled over every input word are encoded **once** into a persistent
:class:`~repro.sat.solver.SatSolver`, and each candidate query is a
``solve(assumptions=...)`` call that pins the unrolled output literals to
the candidate's truth table.  Learned clauses about the circuit structure
are therefore shared across all candidate checks, and witness enumeration
(:meth:`PlausibleFunctionOracle.enumerate_witnesses`) adds blocking clauses
guarded by a per-session activation literal to the same solver.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..logic.boolfunc import BoolFunction
from ..logic.truthtable import TruthTable
from ..netlist.netlist import CONST0_NET, CONST1_NET, Netlist
from ..sat.cnf import Cnf
from ..sat.solver import SatSolver
from ..sat.tseitin import add_exactly_one, encode_camouflaged_copy
from ..techmap.mapper import CamouflagedMapping

__all__ = [
    "DecamouflageResult",
    "PlausibleFunctionOracle",
    "is_function_plausible",
    "plausible_viable_functions",
]


@dataclass
class DecamouflageResult:
    """Result of one plausibility query."""

    plausible: bool
    #: When plausible, a witness configuration: instance name -> configured function.
    witness: Dict[str, TruthTable] = field(default_factory=dict)
    conflicts: int = 0

    def __bool__(self) -> bool:
        return self.plausible


class PlausibleFunctionOracle:
    """SAT-based oracle answering "can this circuit implement function f?".

    The oracle is built once per camouflaged netlist; the circuit is
    unrolled over all input words with the per-instance configuration
    variables shared across the unrolled copies.  The encoding lives in one
    persistent incremental solver, and each query merely assumes the output
    literals of every word to match the candidate function.
    """

    def __init__(
        self,
        netlist: Netlist,
        instance_plausible: Mapping[str, Sequence[TruthTable]],
    ):
        self._netlist = netlist
        self._plausible = {
            name: list(dict.fromkeys(functions))
            for name, functions in instance_plausible.items()
        }
        for name, functions in self._plausible.items():
            if not functions:
                raise ValueError(f"instance {name!r} has an empty plausible set")
        self._cnf: Optional[Cnf] = None
        self._solver: Optional[SatSolver] = None
        self._selector_vars: Dict[Tuple[str, int], int] = {}
        #: Per input word, the literal of every primary output of that copy.
        self._word_outputs: List[List[int]] = []

    @classmethod
    def from_mapping(cls, mapping: CamouflagedMapping) -> "PlausibleFunctionOracle":
        """Build the oracle an adversary would build from a mapped design."""
        plausible = {
            name: list(mapping.plausible_functions_of(name))
            for name in mapping.camouflaged_instances()
        }
        return cls(mapping.netlist, plausible)

    # -------------------------------------------------------------- #
    # Encoding (once, lazily)
    # -------------------------------------------------------------- #
    def _ensure_encoded(self) -> SatSolver:
        if self._solver is not None:
            return self._solver
        netlist = self._netlist
        num_inputs = len(netlist.primary_inputs)

        cnf = Cnf()
        solver = SatSolver(cnf, follow=True)
        true_var = cnf.new_var("const.true")
        cnf.add_clause([true_var])

        for name, functions in self._plausible.items():
            literals = []
            for index in range(len(functions)):
                variable = cnf.new_var(f"cfg.{name}.{index}")
                self._selector_vars[(name, index)] = variable
                literals.append(variable)
            # Exactly one configuration per camouflaged instance.
            add_exactly_one(cnf, literals)

        order = netlist.topological_order()
        for word in range(1 << num_inputs):
            inputs: Dict[str, int] = {
                CONST1_NET: true_var,
                CONST0_NET: -true_var,
            }
            for position, net in enumerate(netlist.primary_inputs):
                value = (word >> position) & 1
                inputs[net] = true_var if value else -true_var
            net_literal = encode_camouflaged_copy(
                cnf, netlist, order, self._plausible, self._selector_vars, inputs
            )
            self._word_outputs.append(
                [net_literal[net] for net in netlist.primary_outputs]
            )
        self._cnf = cnf
        self._solver = solver
        return solver

    def _candidate_assumptions(self, candidate: BoolFunction) -> List[int]:
        """Output-pinning assumptions encoding ``circuit == candidate``."""
        netlist = self._netlist
        if candidate.num_inputs != len(netlist.primary_inputs):
            raise ValueError(
                f"candidate has {candidate.num_inputs} inputs, circuit has "
                f"{len(netlist.primary_inputs)}"
            )
        if candidate.num_outputs != len(netlist.primary_outputs):
            raise ValueError("candidate and circuit have different numbers of outputs")
        self._ensure_encoded()
        assumptions: List[int] = []
        for word, output_literals in enumerate(self._word_outputs):
            expected = candidate.evaluate_word(word)
            for position, literal in enumerate(output_literals):
                assumptions.append(
                    literal if (expected >> position) & 1 else -literal
                )
        return assumptions

    def _model_witness(self, model: Dict[int, bool]) -> Dict[str, TruthTable]:
        witness: Dict[str, TruthTable] = {}
        for (name, index), variable in self._selector_vars.items():
            if model.get(variable, False):
                witness[name] = self._plausible[name][index]
        return witness

    # -------------------------------------------------------------- #
    # Queries
    # -------------------------------------------------------------- #
    def is_plausible(self, candidate: BoolFunction) -> DecamouflageResult:
        """Can the camouflaged circuit implement the candidate function?"""
        assumptions = self._candidate_assumptions(candidate)
        result = self._solver.solve(assumptions)
        if not result.satisfiable:
            return DecamouflageResult(False, conflicts=result.conflicts)
        return DecamouflageResult(
            True, witness=self._model_witness(result.model), conflicts=result.conflicts
        )

    def enumerate_witnesses(
        self, candidate: BoolFunction, limit: Optional[int] = None
    ) -> List[Dict[str, TruthTable]]:
        """All configurations under which the circuit implements ``candidate``.

        Enumeration runs on the same persistent solver: each found witness is
        excluded by a blocking clause over its selector variables, guarded by
        a fresh session activation literal so the blocking clauses become
        inert (a single permanent unit clause disables them) once the
        enumeration finishes.
        """
        assumptions = self._candidate_assumptions(candidate)
        session = self._cnf.new_var()
        assumptions.append(session)
        witnesses: List[Dict[str, TruthTable]] = []
        while limit is None or len(witnesses) < limit:
            result = self._solver.solve(assumptions)
            if not result.satisfiable:
                break
            witnesses.append(self._model_witness(result.model))
            blocking = [-session]
            for variable in self._selector_vars.values():
                if result.model.get(variable, False):
                    blocking.append(-variable)
            self._cnf.add_clause(blocking)
        # Retire the session: the blocking clauses are all satisfied by the
        # unit and never constrain later queries.
        self._cnf.add_clause([-session])
        return witnesses

    def is_plausible_under_any_interpretation(
        self,
        candidate: BoolFunction,
        max_permutations: Optional[int] = None,
    ) -> DecamouflageResult:
        """Check plausibility over all input/output pin interpretations.

        The adversary does not know which external wire carries which logical
        pin, so she must consider every input and output permutation of the
        candidate (Section III-B of the paper).  This is exponential in the
        pin count; ``max_permutations`` caps the number of interpretations
        tried (None means exhaustive).  All interpretations are solved on the
        one persistent solver.
        """
        tried = 0
        for input_perm in itertools.permutations(range(candidate.num_inputs)):
            for output_perm in itertools.permutations(range(candidate.num_outputs)):
                if max_permutations is not None and tried >= max_permutations:
                    return DecamouflageResult(False)
                tried += 1
                view = candidate.permute_inputs(list(input_perm)).permute_outputs(
                    list(output_perm)
                )
                outcome = self.is_plausible(view)
                if outcome.plausible:
                    return outcome
        return DecamouflageResult(False)

    def solver_stats(self) -> Dict[str, int]:
        """Cumulative statistics of the persistent solver (empty before use)."""
        if self._solver is None:
            return {}
        return self._solver.stats()


def is_function_plausible(
    mapping: CamouflagedMapping, candidate: BoolFunction
) -> DecamouflageResult:
    """Convenience wrapper: adversary query against a Phase III mapping."""
    oracle = PlausibleFunctionOracle.from_mapping(mapping)
    return oracle.is_plausible(candidate)


def plausible_viable_functions(
    mapping: CamouflagedMapping,
    viable_functions: Sequence[BoolFunction],
    assignment_views: Optional[Sequence[BoolFunction]] = None,
) -> List[bool]:
    """Evaluate the adversary's checklist: which viable functions are plausible?

    ``assignment_views`` optionally provides the pin-permuted view of each
    viable function (what the designer actually embedded); when omitted the
    functions are checked under the identity interpretation.  Every check
    reuses the same persistent solver.
    """
    oracle = PlausibleFunctionOracle.from_mapping(mapping)
    views = assignment_views if assignment_views is not None else viable_functions
    return [bool(oracle.is_plausible(view)) for view in views]

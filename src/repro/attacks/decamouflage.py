"""Attacker-side analysis: which candidate functions are plausible?

The adversary of the paper images the die, recognises every (look-alike)
cell and its connections, and knows the plausible-function family of each
camouflaged cell — but not which member is actually implemented.  For a
candidate function ``f`` from her pre-existing list of viable functions she
asks: *is there an assignment of plausible functions to the camouflaged
instances that makes the circuit implement ``f``?*  This is the QBF-style
query of the paper (reference [14]) specialised to combinational blocks with
a handful of inputs, which lets us unroll the universal quantification over
the inputs and answer it with a single SAT call.

The oracle is incremental: the configuration selectors and the circuit
unrolled over every input word are encoded **once** into a persistent
:class:`~repro.sat.solver.SatSolver`, and each candidate query is a
``solve(assumptions=...)`` call that pins the unrolled output literals to
the candidate's truth table.  Learned clauses about the circuit structure
are therefore shared across all candidate checks, and witness enumeration
(:meth:`PlausibleFunctionOracle.enumerate_witnesses`) adds blocking clauses
guarded by a per-session activation literal to the same solver.

Fuzz-before-SAT: with the pre-filter enabled (the default; pass
``prefilter=False`` or set ``REPRO_FUZZ=0`` to opt out), a query is
answered by simulation-guided abstraction refinement instead of the full
unrolling:

1. a three-valued packed *possibility* pass (:func:`repro.sim.prefilter.
   possibility_refute`) soundly refutes candidates that need an output bit
   no combination of plausible functions can achieve;
2. surviving candidates enter a CEGAR loop over a **lazily unrolled** word
   set: the solver is asked for a configuration consistent with the words
   encoded so far, the model configuration is checked against the whole
   input space with one packed word-parallel simulation pass, and the
   mismatching words — the counterexamples — are added to the encoding.
   ``UNSAT`` on a subset of the words already proves implausibility, and a
   simulation-verified model is an exact witness, so verdicts are identical
   to the eager encoding while typically touching a small fraction of the
   input space.

Counterexample words persist across queries of one oracle (they are simply
the encoded words), so each candidate is first confronted with the patterns
that killed its predecessors — the replay-buffer discipline of classic SAT
sweeping.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..logic.boolfunc import BoolFunction
from ..logic.truthtable import TruthTable
from ..netlist.netlist import CONST0_NET, CONST1_NET, Netlist
from ..sat.cnf import Cnf
from ..sat.solver import SatResult, SatSolver, SolveBudget, SolveBudgetExceeded
from ..sat.tseitin import add_exactly_one, encode_camouflaged_copy
from ..sim.engine import NetlistSimulator
from ..sim.patterns import PatternBatch
from ..sim.prefilter import PossibilityAnalysis, fuzz_enabled
from ..techmap.mapper import CamouflagedMapping

__all__ = [
    "DecamouflageResult",
    "PlausibleFunctionOracle",
    "is_function_plausible",
    "plausible_viable_functions",
]


@dataclass
class DecamouflageResult:
    """Result of one plausibility query."""

    plausible: bool
    #: When plausible, a witness configuration: instance name -> configured function.
    witness: Dict[str, TruthTable] = field(default_factory=dict)
    conflicts: int = 0

    def __bool__(self) -> bool:
        return self.plausible


class PlausibleFunctionOracle:
    """SAT-based oracle answering "can this circuit implement function f?".

    The oracle is built once per camouflaged netlist; the circuit is
    unrolled over all input words with the per-instance configuration
    variables shared across the unrolled copies.  The encoding lives in one
    persistent incremental solver, and each query merely assumes the output
    literals of every word to match the candidate function.
    """

    def __init__(
        self,
        netlist: Netlist,
        instance_plausible: Mapping[str, Sequence[TruthTable]],
        prefilter: Optional[bool] = None,
        budget: Optional[SolveBudget] = None,
    ):
        self._netlist = netlist
        self._budget = budget
        self._plausible = {
            name: list(dict.fromkeys(functions))
            for name, functions in instance_plausible.items()
        }
        for name, functions in self._plausible.items():
            if not functions:
                raise ValueError(f"instance {name!r} has an empty plausible set")
        self._cnf: Optional[Cnf] = None
        self._solver: Optional[SatSolver] = None
        self._true_var: Optional[int] = None
        self._selector_vars: Dict[Tuple[str, int], int] = {}
        self._order = None
        #: Per encoded input word, the literal of every primary output of
        #: that unrolled copy (insertion-ordered; the eager path encodes all
        #: words 0..2**n-1 up front, the CEGAR path grows it lazily).
        self._word_outputs: Dict[int, List[int]] = {}
        self._prefilter = fuzz_enabled(prefilter)
        self._simulator: Optional[NetlistSimulator] = None
        #: Cached three-valued achievability maps (candidate-independent).
        self._possibility: Optional[PossibilityAnalysis] = None
        self._prefilter_counters = {
            "queries": 0,
            "possibility_refutations": 0,
            "cegar_rounds": 0,
            "cegar_verdicts": 0,
            "words_encoded": 0,
        }

    @classmethod
    def from_mapping(
        cls,
        mapping: CamouflagedMapping,
        prefilter: Optional[bool] = None,
        budget: Optional[SolveBudget] = None,
    ) -> "PlausibleFunctionOracle":
        """Build the oracle an adversary would build from a mapped design."""
        plausible = {
            name: list(mapping.plausible_functions_of(name))
            for name in mapping.camouflaged_instances()
        }
        return cls(mapping.netlist, plausible, prefilter=prefilter, budget=budget)

    def _solve(self, assumptions: Sequence[int]) -> SatResult:
        """Budgeted solve; a plausibility verdict must never be guessed, so
        an UNKNOWN result raises instead of masquerading as "implausible"."""
        result = self._solver.solve(assumptions, budget=self._budget)
        if result.unknown:
            raise SolveBudgetExceeded(
                "plausibility query exhausted its solve budget before reaching "
                "a verdict"
            )
        return result

    # -------------------------------------------------------------- #
    # Encoding (lazily: the base once, words eagerly or on demand)
    # -------------------------------------------------------------- #
    def _ensure_base(self) -> SatSolver:
        """Create the solver with the per-instance selector constraints."""
        if self._solver is not None:
            return self._solver
        cnf = Cnf()
        solver = SatSolver(cnf, follow=True)
        self._true_var = cnf.new_var("const.true")
        cnf.add_clause([self._true_var])

        for name, functions in self._plausible.items():
            literals = []
            for index in range(len(functions)):
                variable = cnf.new_var(f"cfg.{name}.{index}")
                self._selector_vars[(name, index)] = variable
                literals.append(variable)
            # Exactly one configuration per camouflaged instance.
            add_exactly_one(cnf, literals)

        self._order = self._netlist.topological_order()
        self._cnf = cnf
        self._solver = solver
        return solver

    def _encode_word(self, word: int) -> None:
        """Unroll the circuit at one input word (idempotent)."""
        if word in self._word_outputs:
            return
        netlist = self._netlist
        inputs: Dict[str, int] = {
            CONST1_NET: self._true_var,
            CONST0_NET: -self._true_var,
        }
        for position, net in enumerate(netlist.primary_inputs):
            value = (word >> position) & 1
            inputs[net] = self._true_var if value else -self._true_var
        net_literal = encode_camouflaged_copy(
            self._cnf, netlist, self._order, self._plausible, self._selector_vars,
            inputs,
        )
        self._word_outputs[word] = [
            net_literal[net] for net in netlist.primary_outputs
        ]
        self._prefilter_counters["words_encoded"] += 1

    def _ensure_encoded(self) -> SatSolver:
        """Eager path: the base plus every input word, encoded once."""
        solver = self._ensure_base()
        num_inputs = len(self._netlist.primary_inputs)
        if len(self._word_outputs) < (1 << num_inputs):
            for word in range(1 << num_inputs):
                self._encode_word(word)
        return solver

    def _validate_candidate(self, candidate: BoolFunction) -> None:
        netlist = self._netlist
        if candidate.num_inputs != len(netlist.primary_inputs):
            raise ValueError(
                f"candidate has {candidate.num_inputs} inputs, circuit has "
                f"{len(netlist.primary_inputs)}"
            )
        if candidate.num_outputs != len(netlist.primary_outputs):
            raise ValueError("candidate and circuit have different numbers of outputs")

    def _assumptions_for_words(self, candidate: BoolFunction) -> List[int]:
        """Output-pinning assumptions over the currently encoded words."""
        assumptions: List[int] = []
        for word, output_literals in self._word_outputs.items():
            expected = candidate.evaluate_word(word)
            for position, literal in enumerate(output_literals):
                assumptions.append(
                    literal if (expected >> position) & 1 else -literal
                )
        return assumptions

    def _candidate_assumptions(self, candidate: BoolFunction) -> List[int]:
        """Output-pinning assumptions encoding ``circuit == candidate``."""
        self._validate_candidate(candidate)
        self._ensure_encoded()
        return self._assumptions_for_words(candidate)

    def _model_witness(self, model: Dict[int, bool]) -> Dict[str, TruthTable]:
        witness: Dict[str, TruthTable] = {}
        for (name, index), variable in self._selector_vars.items():
            if model.get(variable, False):
                witness[name] = self._plausible[name][index]
        return witness

    # -------------------------------------------------------------- #
    # Queries
    # -------------------------------------------------------------- #
    def is_plausible(self, candidate: BoolFunction) -> DecamouflageResult:
        """Can the camouflaged circuit implement the candidate function?

        With the pre-filter enabled the query runs the simulation-guided
        CEGAR loop (possibility refutation, then lazily unrolled words with
        packed model verification); otherwise the circuit is eagerly
        unrolled over every word and answered with one solver call.
        Verdicts are identical either way.
        """
        self._validate_candidate(candidate)
        self._prefilter_counters["queries"] += 1
        if self._prefilter:
            return self._is_plausible_cegar(candidate)
        assumptions = self._candidate_assumptions(candidate)
        result = self._solve(assumptions)
        if not result.satisfiable:
            return DecamouflageResult(False, conflicts=result.conflicts)
        return DecamouflageResult(
            True, witness=self._model_witness(result.model), conflicts=result.conflicts
        )

    #: Mismatch words added to the lazy encoding per CEGAR round.
    CEGAR_WORDS_PER_ROUND = 4
    #: Below this input count the lazy unrolling cannot beat the eager one:
    #: camouflage spaces are intentionally ambiguous, so CEGAR converges
    #: only after pinning most of a small space anyway — at extra solve
    #: cost.  The possibility pre-filter still runs; survivors go eager.
    CEGAR_MIN_INPUTS = 5

    def _is_plausible_cegar(self, candidate: BoolFunction) -> DecamouflageResult:
        """Simulation-guided plausibility check over a lazily unrolled space."""
        if self._possibility is None:
            self._possibility = PossibilityAnalysis(self._netlist, self._plausible)
        word = self._possibility.refute(candidate)
        if word is not None:
            self._prefilter_counters["possibility_refutations"] += 1
            return DecamouflageResult(False)
        if len(self._netlist.primary_inputs) < self.CEGAR_MIN_INPUTS:
            assumptions = self._candidate_assumptions(candidate)
            result = self._solve(assumptions)
            if not result.satisfiable:
                return DecamouflageResult(False, conflicts=result.conflicts)
            return DecamouflageResult(
                True,
                witness=self._model_witness(result.model),
                conflicts=result.conflicts,
            )
        if self._simulator is None:
            self._simulator = NetlistSimulator(self._netlist)
        self._ensure_base()
        batch = PatternBatch.exhaustive(len(self._netlist.primary_inputs))
        expected = [table.bits for table in candidate.outputs]
        conflicts = 0
        while True:
            self._prefilter_counters["cegar_rounds"] += 1
            result = self._solve(self._assumptions_for_words(candidate))
            conflicts += result.conflicts
            if not result.satisfiable:
                # UNSAT on a subset of the words refutes the full query.
                self._prefilter_counters["cegar_verdicts"] += 1
                return DecamouflageResult(False, conflicts=conflicts)
            witness = self._model_witness(result.model)
            lanes = self._simulator.output_lanes(batch, witness)
            mismatch = 0
            for lane, want in zip(lanes, expected):
                mismatch |= lane ^ want
            if not mismatch:
                # The model configuration matches the candidate everywhere:
                # an exactly verified witness, no full unrolling needed.
                self._prefilter_counters["cegar_verdicts"] += 1
                return DecamouflageResult(True, witness=witness, conflicts=conflicts)
            added = 0
            while mismatch and added < self.CEGAR_WORDS_PER_ROUND:
                low = mismatch & -mismatch
                self._encode_word(low.bit_length() - 1)
                mismatch ^= low
                added += 1

    def enumerate_witnesses(
        self, candidate: BoolFunction, limit: Optional[int] = None
    ) -> List[Dict[str, TruthTable]]:
        """All configurations under which the circuit implements ``candidate``.

        Enumeration runs on the same persistent solver: each found witness is
        excluded by a blocking clause over its selector variables, guarded by
        a fresh session activation literal so the blocking clauses become
        inert (a single permanent unit clause disables them) once the
        enumeration finishes.
        """
        assumptions = self._candidate_assumptions(candidate)
        session = self._cnf.new_var()
        assumptions.append(session)
        witnesses: List[Dict[str, TruthTable]] = []
        while limit is None or len(witnesses) < limit:
            result = self._solve(assumptions)
            if not result.satisfiable:
                break
            witnesses.append(self._model_witness(result.model))
            blocking = [-session]
            for variable in self._selector_vars.values():
                if result.model.get(variable, False):
                    blocking.append(-variable)
            self._cnf.add_clause(blocking)
        # Retire the session: the blocking clauses are all satisfied by the
        # unit and never constrain later queries.
        self._cnf.add_clause([-session])
        return witnesses

    def is_plausible_under_any_interpretation(
        self,
        candidate: BoolFunction,
        max_permutations: Optional[int] = None,
    ) -> DecamouflageResult:
        """Check plausibility over all input/output pin interpretations.

        The adversary does not know which external wire carries which logical
        pin, so she must consider every input and output permutation of the
        candidate (Section III-B of the paper).  This is exponential in the
        pin count; ``max_permutations`` caps the number of interpretations
        tried (None means exhaustive).  All interpretations are solved on the
        one persistent solver.
        """
        tried = 0
        for input_perm in itertools.permutations(range(candidate.num_inputs)):
            for output_perm in itertools.permutations(range(candidate.num_outputs)):
                if max_permutations is not None and tried >= max_permutations:
                    return DecamouflageResult(False)
                tried += 1
                view = candidate.permute_inputs(list(input_perm)).permute_outputs(
                    list(output_perm)
                )
                outcome = self.is_plausible(view)
                if outcome.plausible:
                    return outcome
        return DecamouflageResult(False)

    def solver_stats(self) -> Dict[str, int]:
        """Cumulative statistics of the persistent solver (empty before use)."""
        if self._solver is None:
            return {}
        return self._solver.stats()

    def prefilter_stats(self) -> Dict[str, int]:
        """Query and encoding-work counters of this oracle.

        ``queries`` counts every :meth:`is_plausible` call and
        ``words_encoded`` every unrolled input word, on both paths (the
        eager path encodes all ``2**n`` words on first use).  The
        fuzz-specific counters — ``possibility_refutations``,
        ``cegar_rounds``, ``cegar_verdicts`` — stay zero while the
        pre-filter is off.
        """
        return dict(self._prefilter_counters)

    def telemetry(self, label: str = "") -> "RunTelemetry":
        """Solver and pre-filter counters as one unified telemetry record."""
        from ..telemetry import RunTelemetry

        record = RunTelemetry.from_prefilter_stats(
            self.prefilter_stats(), label=label
        )
        return record.merged(
            RunTelemetry.from_solver_stats(self.solver_stats()), label=label
        )


def is_function_plausible(
    mapping: CamouflagedMapping,
    candidate: BoolFunction,
    prefilter: Optional[bool] = None,
) -> DecamouflageResult:
    """Convenience wrapper: adversary query against a Phase III mapping."""
    oracle = PlausibleFunctionOracle.from_mapping(mapping, prefilter=prefilter)
    return oracle.is_plausible(candidate)


def plausible_viable_functions(
    mapping: CamouflagedMapping,
    viable_functions: Sequence[BoolFunction],
    assignment_views: Optional[Sequence[BoolFunction]] = None,
    prefilter: Optional[bool] = None,
) -> List[bool]:
    """Evaluate the adversary's checklist: which viable functions are plausible?

    ``assignment_views`` optionally provides the pin-permuted view of each
    viable function (what the designer actually embedded); when omitted the
    functions are checked under the identity interpretation.  Every check
    reuses the same persistent solver (and, with ``prefilter``, the same
    packed simulator).
    """
    oracle = PlausibleFunctionOracle.from_mapping(mapping, prefilter=prefilter)
    views = assignment_views if assignment_views is not None else viable_functions
    return [bool(oracle.is_plausible(view)) for view in views]

"""Random camouflaging baseline.

Section I of the paper argues that *random* camouflaging does not help
against an adversary with a list of viable functions: the set of plausible
functions created by randomly replacing gates with look-alike cells is
astronomically unlikely to contain any *other* viable function, so the
adversary simply rules them out one by one.

This module implements that baseline: it takes the synthesised netlist of a
single (true) function, replaces a random subset of its gates with their
camouflaged variants (configured to keep the nominal function), and exposes
the same adversary oracle so the claim can be tested experimentally.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..camo.library import CamouflageLibrary, default_camouflage_library
from ..camo.cells import CAMO_PREFIX
from ..logic.boolfunc import BoolFunction
from ..logic.truthtable import TruthTable
from ..netlist.library import CellLibrary
from ..netlist.netlist import Netlist
from .decamouflage import DecamouflageResult, PlausibleFunctionOracle

__all__ = ["RandomCamouflageResult", "randomly_camouflage", "RandomCamouflagedCircuit"]


@dataclass
class RandomCamouflagedCircuit:
    """A netlist with a random subset of gates replaced by look-alike cells."""

    netlist: Netlist
    camo_library: CamouflageLibrary
    camouflaged_instances: List[str] = field(default_factory=list)
    #: The true (nominal) configuration of every camouflaged instance.
    true_configuration: Dict[str, TruthTable] = field(default_factory=dict)

    def oracle(self) -> PlausibleFunctionOracle:
        """Build the adversary's plausibility oracle for this circuit."""
        plausible = {
            name: list(self.camo_library[self.netlist.instance(name).cell].plausible)
            for name in self.camouflaged_instances
        }
        return PlausibleFunctionOracle(self.netlist, plausible)

    def is_plausible(self, candidate: BoolFunction) -> DecamouflageResult:
        """Adversary query: can this circuit implement ``candidate``?"""
        return self.oracle().is_plausible(candidate)

    def area(self) -> float:
        """Netlist area in gate equivalents."""
        return self.netlist.area()


@dataclass
class RandomCamouflageResult:
    """Summary of the random-camouflaging experiment for a set of candidates."""

    circuit: RandomCamouflagedCircuit
    plausible: List[bool]

    @property
    def num_plausible(self) -> int:
        """How many candidate functions the adversary cannot rule out."""
        return sum(1 for flag in self.plausible if flag)


def randomly_camouflage(
    netlist: Netlist,
    fraction: float = 0.5,
    seed: int = 1,
    camo_library: Optional[CamouflageLibrary] = None,
) -> RandomCamouflagedCircuit:
    """Replace a random subset of gates by their camouflaged look-alikes.

    The replaced instances keep their nominal function (the camouflage is
    purely about what the adversary must consider), so the circuit's true
    behaviour is unchanged.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be between 0 and 1")
    camo_library = camo_library or default_camouflage_library(netlist.library)
    rng = random.Random(seed)

    candidates = [
        instance.name
        for instance in netlist.instances
        if f"{CAMO_PREFIX}{netlist.instance(instance.name).cell}" in camo_library
    ]
    count = round(len(candidates) * fraction)
    chosen = set(rng.sample(candidates, count)) if count else set()

    merged_library = camo_library.as_cell_library(include=netlist.library)
    result = Netlist(f"{netlist.name}_randcamo", merged_library)
    for net in netlist.primary_inputs:
        result.add_input(net)
    camouflaged: List[str] = []
    true_config: Dict[str, TruthTable] = {}
    for instance in netlist.topological_order():
        if instance.name in chosen:
            cell_name = f"{CAMO_PREFIX}{instance.cell}"
            new_instance = result.add_instance(
                cell_name, list(instance.inputs), output=instance.output,
                name=instance.name,
            )
            camouflaged.append(new_instance.name)
            true_config[new_instance.name] = netlist.library[instance.cell].function
        else:
            result.add_instance(
                instance.cell, list(instance.inputs), output=instance.output,
                name=instance.name,
            )
    for net in netlist.primary_outputs:
        result.add_output(net)

    return RandomCamouflagedCircuit(
        netlist=result,
        camo_library=camo_library,
        camouflaged_instances=camouflaged,
        true_configuration=true_config,
    )


def random_camouflage_experiment(
    netlist: Netlist,
    candidates: Sequence[BoolFunction],
    fraction: float = 0.5,
    seed: int = 1,
    camo_library: Optional[CamouflageLibrary] = None,
) -> RandomCamouflageResult:
    """Camouflage randomly and ask the adversary about every candidate."""
    circuit = randomly_camouflage(netlist, fraction=fraction, seed=seed, camo_library=camo_library)
    flags = [bool(circuit.is_plausible(candidate)) for candidate in candidates]
    return RandomCamouflageResult(circuit=circuit, plausible=flags)

"""Adversary model: plausibility verification and decamouflaging analyses."""

from .decamouflage import (
    DecamouflageResult,
    PlausibleFunctionOracle,
    is_function_plausible,
    plausible_viable_functions,
)
from .oracle_guided import OracleGuidedAttack, OracleGuidedResult, attack_mapping
from .plausibility import PlausibilityReport, verify_viable_functions
from .random_camo import (
    RandomCamouflagedCircuit,
    RandomCamouflageResult,
    random_camouflage_experiment,
    randomly_camouflage,
)

__all__ = [
    "OracleGuidedAttack",
    "OracleGuidedResult",
    "attack_mapping",
    "PlausibilityReport",
    "verify_viable_functions",
    "DecamouflageResult",
    "PlausibleFunctionOracle",
    "is_function_plausible",
    "plausible_viable_functions",
    "RandomCamouflagedCircuit",
    "RandomCamouflageResult",
    "randomly_camouflage",
    "random_camouflage_experiment",
]

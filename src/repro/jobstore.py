"""Lease-based job store: N processes pull pending jobs without double work.

The campaign runner's ``<state_dir>`` already holds one atomic state file
per finished job; this module promotes that directory into a shared *job
store* that several concurrent processes (the first step toward several
machines) can safely pull pending jobs from:

* **Claiming is an O_EXCL create** of a ``<job_id>.lease`` sidecar file —
  the filesystem arbitrates, exactly one claimant wins.
* **Leases expire.**  Every lease carries its owner id and an expiry
  timestamp; the owner refreshes it (heartbeat) while the job runs.  A
  lease whose expiry has passed — or whose owner process is provably dead
  on this host — is *reclaimable*.
* **Reclaiming is an atomic rename** of the stale lease to a
  claimant-private tombstone: when several processes spot the same expired
  lease, only one ``rename`` succeeds and the losers back off, so a
  crashed worker's job is re-run exactly once, from its last persisted
  state.
* **Attempt history is persisted** per job in a ``<job_id>.attempts.json``
  sidecar (owner, timestamps, outcome of every attempt), giving campaigns
  the per-job attempt/owner telemetry that proves no job ran twice.

The store knows nothing about what a "job" is — the campaign runner keeps
owning execution and its fingerprinted state files; this layer only
arbitrates *who* may run a job id right now.

Retry policy
------------

:class:`RetryPolicy` implements capped exponential backoff with
*deterministic, seeded* jitter: the delay for (job id, attempt) is a pure
function of both, so concurrent claimants spread out reproducibly instead
of thundering in lockstep.  :func:`classify_failure` separates transient
failures (crashed workers, exhausted solve budgets, I/O hiccups — worth
retrying) from permanent ones (bad parameters — retrying cannot help).

Environment knobs: ``REPRO_LEASE_TTL`` (seconds, default 60),
``REPRO_RETRY_ATTEMPTS`` (default 3), ``REPRO_RETRY_BASE_DELAY`` (seconds,
default 0.1), ``REPRO_RETRY_MAX_DELAY`` (seconds, default 30).  The
``clock_skew`` fault point (see :mod:`repro.faults`) shifts this module's
clock for chaos tests.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from .faults import clock_skew_seconds, faults_enabled
from .obs.trace import current_traceparent, tracing_enabled
from .obs.trace import event as trace_event

__all__ = [
    "JobStore",
    "Lease",
    "LeaseLost",
    "RetryPolicy",
    "classify_failure",
    "LEASE_TTL_ENV_VAR",
    "DEFAULT_LEASE_TTL",
    "RETRY_ATTEMPTS_ENV_VAR",
    "RETRY_BASE_DELAY_ENV_VAR",
    "RETRY_MAX_DELAY_ENV_VAR",
]

#: Environment variable overriding the default lease time-to-live (seconds).
LEASE_TTL_ENV_VAR = "REPRO_LEASE_TTL"

#: Default lease time-to-live in seconds.  Heartbeats refresh at TTL/3, so
#: a lease only expires after three consecutive missed heartbeats.
DEFAULT_LEASE_TTL = 60.0

RETRY_ATTEMPTS_ENV_VAR = "REPRO_RETRY_ATTEMPTS"
RETRY_BASE_DELAY_ENV_VAR = "REPRO_RETRY_BASE_DELAY"
RETRY_MAX_DELAY_ENV_VAR = "REPRO_RETRY_MAX_DELAY"


class LeaseLost(RuntimeError):
    """A heartbeat found the lease gone or owned by someone else."""


@dataclass
class Lease:
    """A successfully claimed lease on one job id."""

    job_id: str
    owner: str
    expires: float
    path: str


def _float_env(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        return default


def _int_env(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        return default


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic seeded jitter."""

    max_attempts: int = 3
    base_delay: float = 0.1
    max_delay: float = 30.0
    #: Jitter fraction: the delay is scaled by a factor drawn (seeded,
    #: deterministically) from ``[1 - jitter, 1]``.
    jitter: float = 0.5

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    @classmethod
    def from_environment(cls) -> "RetryPolicy":
        return cls(
            max_attempts=max(1, _int_env(RETRY_ATTEMPTS_ENV_VAR, 3)),
            base_delay=_float_env(RETRY_BASE_DELAY_ENV_VAR, 0.1),
            max_delay=_float_env(RETRY_MAX_DELAY_ENV_VAR, 30.0),
        )

    def should_retry(self, attempt: int) -> bool:
        """May a job that has failed ``attempt`` times run again?"""
        return attempt < self.max_attempts

    def delay(self, job_id: str, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (first retry = 1).

        Pure function of (job id, attempt): the exponential delay is scaled
        by a jitter factor seeded from a hash of both, so reruns are
        byte-reproducible while concurrent claimants still de-synchronise.
        """
        if attempt < 1:
            return 0.0
        base = min(self.max_delay, self.base_delay * (2 ** (attempt - 1)))
        if not self.jitter:
            return base
        digest = hashlib.sha256(f"{job_id}:{attempt}".encode("utf-8")).digest()
        fraction = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return base * (1.0 - self.jitter * fraction)


#: Exception type names treated as transient without importing their modules.
_TRANSIENT_NAMES = frozenset(
    {
        "WorkerCrashed",
        "SolveBudgetExceeded",
        "BrokenExecutor",
        "BrokenProcessPool",
        "TimeoutError",
        "ConnectionError",
        "MemoryError",
    }
)


def classify_failure(
    exception: Optional[BaseException], error_text: str = ""
) -> str:
    """``"transient"`` (worth retrying) or ``"permanent"``.

    Crashed workers, exhausted solve budgets, and I/O-level failures are
    transient: a retry on a healthy worker (or with an escalated budget)
    can genuinely succeed.  Everything else — above all ``ValueError``-like
    bad-parameter failures — is permanent: re-running the same pure
    function on the same inputs reproduces the same error.  When the
    exception object did not survive pickling, the error text (which
    starts with the exception type name) is consulted instead.
    """
    if exception is not None:
        for klass in type(exception).__mro__:
            if klass.__name__ in _TRANSIENT_NAMES:
                return "transient"
        if isinstance(exception, OSError):
            return "transient"
        return "permanent"
    for name in _TRANSIENT_NAMES | {"OSError", "IOError"}:
        if name in error_text.split(":", 1)[0]:
            return "transient"
    return "permanent"


class JobStore:
    """Filesystem-backed lease arbitration over a campaign state directory.

    ``clock`` is injectable for tests; the production clock is
    ``time.time`` plus any active ``clock_skew`` fault offset.  All writes
    (lease creation, heartbeat rewrite, attempt history) are atomic at the
    filesystem level, so a SIGKILL at any instant leaves either the old or
    the new file — never a torn one — and concurrent processes on one
    directory can never both hold the same job.
    """

    def __init__(
        self,
        directory: str,
        owner: Optional[str] = None,
        lease_ttl: Optional[float] = None,
        clock: Callable[[], float] = time.time,
    ):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        if owner is None:
            token = os.urandom(4).hex()
            owner = f"{socket.gethostname()}:{os.getpid()}:{token}"
        self.owner = owner
        if lease_ttl is None:
            lease_ttl = _float_env(LEASE_TTL_ENV_VAR, DEFAULT_LEASE_TTL)
        if lease_ttl <= 0:
            raise ValueError("lease_ttl must be positive")
        self.lease_ttl = lease_ttl
        self._clock = clock
        #: Robustness counters (flow into campaign telemetry).
        self.claims = 0
        self.claim_conflicts = 0
        self.reclaims = 0

    # -------------------------------------------------------------- #
    # Clock (fault-injectable)
    # -------------------------------------------------------------- #
    def now(self) -> float:
        if faults_enabled():
            return self._clock() + clock_skew_seconds()
        return self._clock()

    # -------------------------------------------------------------- #
    # Paths
    # -------------------------------------------------------------- #
    def lease_path(self, job_id: str) -> str:
        return os.path.join(self.directory, f"{job_id}.lease")

    def attempts_path(self, job_id: str) -> str:
        return os.path.join(self.directory, f"{job_id}.attempts.json")

    # -------------------------------------------------------------- #
    # Claiming
    # -------------------------------------------------------------- #
    def claim(self, job_id: str) -> Optional[Lease]:
        """Try to claim ``job_id``; None when another live owner holds it.

        A stale lease (expired, or owned by a dead process on this host) is
        reclaimed first: the stale file is atomically renamed to a
        claimant-private tombstone — only one of several racing claimants
        wins the rename — and the claim then proceeds through the normal
        O_EXCL create.
        """
        path = self.lease_path(job_id)
        lease = self._try_create(job_id, path)
        if lease is not None:
            self.claims += 1
            self._record_attempt_start(job_id)
            return lease
        holder = self._read_lease(path)
        if holder is not None and not self._stale(holder):
            self.claim_conflicts += 1
            return None
        # Expired or unreadable (torn write during a crash): reclaim.
        if not self._reclaim(path):
            self.claim_conflicts += 1
            return None
        self.reclaims += 1
        lease = self._try_create(job_id, path)
        if lease is None:
            self.claim_conflicts += 1
            return None
        self.claims += 1
        self._record_attempt_start(job_id, reclaimed=True)
        if tracing_enabled():
            # The reclaim edge of the trace: attributed to the *surviving*
            # owner that stole the stale lease, under the job's span.
            trace_event(
                "reclaim",
                job=job_id,
                owner=self.owner,
                previous=str((holder or {}).get("owner", "")),
            )
        return lease

    def _try_create(self, job_id: str, path: str) -> Optional[Lease]:
        expires = self.now() + self.lease_ttl
        payload = json.dumps(
            {
                "job_id": job_id,
                "owner": self.owner,
                "pid": os.getpid(),
                "host": socket.gethostname(),
                "expires": expires,
            },
            sort_keys=True,
        )
        try:
            handle = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return None
        with os.fdopen(handle, "w") as stream:
            stream.write(payload)
            stream.flush()
        return Lease(job_id=job_id, owner=self.owner, expires=expires, path=path)

    def _read_lease(self, path: str) -> Optional[Dict[str, Any]]:
        try:
            with open(path, "r") as stream:
                data = json.load(stream)
        except (OSError, ValueError):
            return None
        return data if isinstance(data, dict) else None

    def _stale(self, holder: Dict[str, Any]) -> bool:
        """Expired, or provably dead owner on this host (fast reclaim)."""
        try:
            expires = float(holder.get("expires", 0.0))
        except (TypeError, ValueError):
            return True
        if expires <= self.now():
            return True
        if holder.get("host") == socket.gethostname():
            pid = holder.get("pid")
            if isinstance(pid, int) and pid > 0 and not _pid_alive(pid):
                return True
        return False

    def _reclaim(self, path: str) -> bool:
        """Atomically retire a stale lease file; True when *we* retired it."""
        tombstone = f"{path}.reclaimed.{os.getpid()}.{os.urandom(4).hex()}"
        try:
            os.rename(path, tombstone)
        except FileNotFoundError:
            return False  # another claimant won the race
        except OSError:
            return False
        try:
            os.unlink(tombstone)
        except OSError:
            pass
        return True

    # -------------------------------------------------------------- #
    # Heartbeat / release
    # -------------------------------------------------------------- #
    def heartbeat(self, lease: Lease) -> Lease:
        """Extend the lease expiry; raises :class:`LeaseLost` when stolen."""
        holder = self._read_lease(lease.path)
        if holder is None or holder.get("owner") != self.owner:
            raise LeaseLost(
                f"lease on {lease.job_id!r} is no longer held by {self.owner!r}"
            )
        expires = self.now() + self.lease_ttl
        holder["expires"] = expires
        tmp = f"{lease.path}.tmp.{os.getpid()}"
        with open(tmp, "w") as stream:
            stream.write(json.dumps(holder, sort_keys=True))
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp, lease.path)
        lease.expires = expires
        return lease

    def holds(self, lease: Lease) -> bool:
        """Is this lease still ours on disk, right now?

        The commit-time safety check: a result computed under a lease that
        has since been reclaimed (clock skew, long pause) must be discarded,
        not committed — the thief may already be re-running the job.
        """
        holder = self._read_lease(lease.path)
        return holder is not None and holder.get("owner") == self.owner

    def release(self, lease: Lease, status: str = "ok") -> None:
        """Record the attempt outcome and drop the lease (idempotent)."""
        self._record_attempt_end(lease.job_id, status)
        holder = self._read_lease(lease.path)
        if holder is not None and holder.get("owner") == self.owner:
            try:
                os.unlink(lease.path)
            except OSError:
                pass

    # -------------------------------------------------------------- #
    # Attempt / owner history
    # -------------------------------------------------------------- #
    def attempts(self, job_id: str) -> List[Dict[str, Any]]:
        """Persisted attempt records for a job (oldest first)."""
        try:
            with open(self.attempts_path(job_id), "r") as stream:
                data = json.load(stream)
        except (OSError, ValueError):
            return []
        return data if isinstance(data, list) else []

    def _write_attempts(self, job_id: str, records: List[Dict[str, Any]]) -> None:
        # Only the lease holder writes this file, so read-modify-write is
        # race-free; the atomic replace protects against torn writes only.
        path = self.attempts_path(job_id)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as stream:
            stream.write(json.dumps(records, sort_keys=True))
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp, path)

    def _record_attempt_start(self, job_id: str, reclaimed: bool = False) -> None:
        records = self.attempts(job_id)
        record: Dict[str, Any] = {
            "owner": self.owner,
            "started": self.now(),
            "status": "running",
        }
        if reclaimed:
            record["reclaimed"] = True
        if tracing_enabled():
            # Annotate the audit trail with the ambient trace context so a
            # post-mortem can join attempts to the recorded spans.
            traceparent = current_traceparent()
            if traceparent:
                record["traceparent"] = traceparent
        records.append(record)
        self._write_attempts(job_id, records)

    def _record_attempt_end(self, job_id: str, status: str) -> None:
        records = self.attempts(job_id)
        for record in reversed(records):
            if record.get("owner") == self.owner and record.get("status") == "running":
                record["status"] = status
                record["finished"] = self.now()
                break
        else:
            records.append(
                {"owner": self.owner, "status": status, "finished": self.now()}
            )
        self._write_attempts(job_id, records)

    def attempt_count(self, job_id: str) -> int:
        """Number of attempts ever started for this job."""
        return len(self.attempts(job_id))


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return True
    return True

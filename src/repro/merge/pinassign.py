"""Pin assignments: the Phase II degrees of freedom.

An adversary who images the die does not know which external wire carries
which logical input or output of a viable function, so the designer is free
to choose, for every viable function, a correspondence between the function's
logical pins and the shared pins of the merged circuit.  A
:class:`PinAssignment` records that correspondence: one input permutation and
one output permutation per viable function.

The flat integer-vector form (:meth:`PinAssignment.to_genotype` /
:meth:`PinAssignment.from_genotype`) is the genotype manipulated by the
genetic algorithm, mirroring the genotype sketched in Fig. 3 of the paper.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..logic.boolfunc import BoolFunction

__all__ = ["PinAssignment"]


def _check_permutation(permutation: Sequence[int], length: int, what: str) -> None:
    if sorted(permutation) != list(range(length)):
        raise ValueError(f"{what} {list(permutation)} is not a permutation of 0..{length - 1}")


@dataclass(frozen=True)
class PinAssignment:
    """Per-function input and output pin permutations.

    ``input_perms[f][i] = j`` means logical input ``i`` of viable function
    ``f`` is driven by shared input pin ``j`` of the merged circuit;
    ``output_perms[f][o] = p`` means logical output ``o`` of function ``f``
    appears on shared output pin ``p``.
    """

    input_perms: Tuple[Tuple[int, ...], ...]
    output_perms: Tuple[Tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if len(self.input_perms) != len(self.output_perms):
            raise ValueError("one input and one output permutation per function required")
        if not self.input_perms:
            raise ValueError("a pin assignment needs at least one function")
        num_inputs = len(self.input_perms[0])
        num_outputs = len(self.output_perms[0])
        for index, permutation in enumerate(self.input_perms):
            if len(permutation) != num_inputs:
                raise ValueError("all input permutations must have the same length")
            _check_permutation(permutation, num_inputs, f"input permutation {index}")
        for index, permutation in enumerate(self.output_perms):
            if len(permutation) != num_outputs:
                raise ValueError("all output permutations must have the same length")
            _check_permutation(permutation, num_outputs, f"output permutation {index}")

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_functions(self) -> int:
        """Number of viable functions covered by the assignment."""
        return len(self.input_perms)

    @property
    def num_inputs(self) -> int:
        """Number of (shared) data inputs."""
        return len(self.input_perms[0])

    @property
    def num_outputs(self) -> int:
        """Number of (shared) outputs."""
        return len(self.output_perms[0])

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def identity(cls, num_functions: int, num_inputs: int, num_outputs: int) -> "PinAssignment":
        """The trivial assignment: every function keeps its natural pin order."""
        input_perm = tuple(range(num_inputs))
        output_perm = tuple(range(num_outputs))
        return cls(
            tuple(input_perm for _ in range(num_functions)),
            tuple(output_perm for _ in range(num_functions)),
        )

    @classmethod
    def random(
        cls,
        num_functions: int,
        num_inputs: int,
        num_outputs: int,
        rng: random.Random,
    ) -> "PinAssignment":
        """A uniformly random assignment (the paper's baseline distribution)."""
        input_perms = []
        output_perms = []
        for _ in range(num_functions):
            inputs = list(range(num_inputs))
            outputs = list(range(num_outputs))
            rng.shuffle(inputs)
            rng.shuffle(outputs)
            input_perms.append(tuple(inputs))
            output_perms.append(tuple(outputs))
        return cls(tuple(input_perms), tuple(output_perms))

    @classmethod
    def for_functions(cls, functions: Sequence[BoolFunction]) -> "PinAssignment":
        """The identity assignment sized for a list of same-shape functions."""
        if not functions:
            raise ValueError("at least one function is required")
        num_inputs = functions[0].num_inputs
        num_outputs = functions[0].num_outputs
        for function in functions:
            if function.num_inputs != num_inputs or function.num_outputs != num_outputs:
                raise ValueError("all viable functions must have the same shape")
        return cls.identity(len(functions), num_inputs, num_outputs)

    # ------------------------------------------------------------------ #
    # Genotype conversion
    # ------------------------------------------------------------------ #
    def to_genotype(self) -> List[int]:
        """Flatten into the GA genotype (inputs of f0, f1, ... then outputs)."""
        genes: List[int] = []
        for permutation in self.input_perms:
            genes.extend(permutation)
        for permutation in self.output_perms:
            genes.extend(permutation)
        return genes

    @classmethod
    def from_genotype(
        cls,
        genes: Sequence[int],
        num_functions: int,
        num_inputs: int,
        num_outputs: int,
    ) -> "PinAssignment":
        """Rebuild a :class:`PinAssignment` from its flattened genotype."""
        expected = num_functions * (num_inputs + num_outputs)
        if len(genes) != expected:
            raise ValueError(f"genotype must have {expected} genes, got {len(genes)}")
        input_perms = []
        output_perms = []
        cursor = 0
        for _ in range(num_functions):
            input_perms.append(tuple(genes[cursor:cursor + num_inputs]))
            cursor += num_inputs
        for _ in range(num_functions):
            output_perms.append(tuple(genes[cursor:cursor + num_outputs]))
            cursor += num_outputs
        return cls(tuple(input_perms), tuple(output_perms))

    # ------------------------------------------------------------------ #
    # Application
    # ------------------------------------------------------------------ #
    def apply(self, functions: Sequence[BoolFunction]) -> List[BoolFunction]:
        """Return the viable functions with their pins re-labelled."""
        if len(functions) != self.num_functions:
            raise ValueError("number of functions does not match the assignment")
        permuted: List[BoolFunction] = []
        for function, input_perm, output_perm in zip(
            functions, self.input_perms, self.output_perms
        ):
            if function.num_inputs != self.num_inputs:
                raise ValueError(
                    f"function {function.name!r} has {function.num_inputs} inputs, "
                    f"assignment expects {self.num_inputs}"
                )
            if function.num_outputs != self.num_outputs:
                raise ValueError(
                    f"function {function.name!r} has {function.num_outputs} outputs, "
                    f"assignment expects {self.num_outputs}"
                )
            permuted.append(
                function.permute_inputs(list(input_perm)).permute_outputs(list(output_perm))
            )
        return permuted

    def canonical_key(self) -> Tuple[int, ...]:
        """A hashable key for caching fitness evaluations."""
        return tuple(self.to_genotype())

"""Phase I: building the merged multi-function circuit.

The merged design (Fig. 2 of the paper) exposes the shared data inputs of
all viable functions plus ``ceil(log2(n))`` select inputs; for each value of
the select word the circuit behaves as one of the viable functions (after
that function's pin permutation has been applied).  Synthesis of this merged
description is free to use the select signals anywhere, which is what gives
the area benefit over a naive "n copies + output multiplexers" structure.

Two constructions are provided:

* :func:`merge_functions` — the functional merge used by the synthesis flow
  (a single :class:`~repro.logic.boolfunc.BoolFunction` over data + select
  inputs);
* :func:`naive_merged_netlist` — the explicit Fig. 2 structure (each function
  synthesised separately, joined with output multiplexer trees); it serves as
  an ablation baseline showing how much the shared synthesis saves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..logic.boolfunc import BoolFunction
from ..logic.truthtable import TruthTable
from ..netlist.library import CellLibrary, standard_cell_library
from ..netlist.netlist import CONST0_NET, CONST1_NET, Netlist
from .pinassign import PinAssignment

__all__ = ["MergedDesign", "merge_functions", "num_select_inputs", "naive_merged_netlist"]


def num_select_inputs(num_functions: int) -> int:
    """Number of select inputs needed to distinguish ``num_functions`` functions."""
    if num_functions < 1:
        raise ValueError("at least one function is required")
    if num_functions == 1:
        return 0
    return math.ceil(math.log2(num_functions))


@dataclass(frozen=True)
class MergedDesign:
    """The result of Phase I: the merged function plus its bookkeeping."""

    function: BoolFunction
    viable_functions: Tuple[BoolFunction, ...]
    assignment: PinAssignment
    num_data_inputs: int
    num_selects: int

    @property
    def select_input_indices(self) -> Tuple[int, ...]:
        """Indices of the select variables within the merged function's inputs."""
        return tuple(range(self.num_data_inputs, self.num_data_inputs + self.num_selects))

    def function_for_select(self, select_value: int) -> BoolFunction:
        """Return the viable function realised for a given select word."""
        limit = 1 << self.num_selects
        if not 0 <= select_value < limit:
            raise ValueError("select value out of range")
        index = min(select_value, len(self.viable_functions) - 1)
        permuted = self.assignment.apply(list(self.viable_functions))
        return permuted[index]


def merge_functions(
    functions: Sequence[BoolFunction],
    assignment: Optional[PinAssignment] = None,
    name: str = "merged",
) -> MergedDesign:
    """Merge viable functions into a single multi-function design.

    The merged function has the shared data inputs as variables
    ``0 .. k-1`` and the select inputs as variables ``k .. k+s-1``.  For a
    select word ``v`` the outputs equal viable function ``min(v, n-1)`` under
    the given pin assignment (the clamp only matters when ``n`` is not a
    power of two).
    """
    if not functions:
        raise ValueError("at least one viable function is required")
    if assignment is None:
        assignment = PinAssignment.for_functions(functions)
    permuted = assignment.apply(list(functions))

    num_inputs = permuted[0].num_inputs
    num_outputs = permuted[0].num_outputs
    selects = num_select_inputs(len(functions))
    total_inputs = num_inputs + selects
    rows_per_block = 1 << num_inputs

    outputs: List[TruthTable] = []
    for out_index in range(num_outputs):
        bits = 0
        for select_value in range(1 << selects):
            source = permuted[min(select_value, len(permuted) - 1)]
            block = source.output(out_index).bits
            bits |= block << (select_value * rows_per_block)
        outputs.append(TruthTable(total_inputs, bits))

    input_names = [f"i[{k}]" for k in range(num_inputs)] + [
        f"sel[{k}]" for k in range(selects)
    ]
    output_names = [f"o[{k}]" for k in range(num_outputs)]
    merged = BoolFunction(
        outputs, name=name, input_names=input_names, output_names=output_names
    )
    return MergedDesign(
        function=merged,
        viable_functions=tuple(functions),
        assignment=assignment,
        num_data_inputs=num_inputs,
        num_selects=selects,
    )


def naive_merged_netlist(
    functions: Sequence[BoolFunction],
    assignment: Optional[PinAssignment] = None,
    library: Optional[CellLibrary] = None,
    name: str = "merged_naive",
) -> Netlist:
    """Build the explicit Fig. 2 structure (no cross-function logic sharing).

    Each viable function is synthesised independently and the outputs are
    combined with a tree of 2:1 multiplexers driven by the select inputs.
    This is the structure a designer would get without Phase I/II and is used
    as an ablation reference.
    """
    from ..synth.script import synthesize  # local import to avoid a cycle

    if not functions:
        raise ValueError("at least one viable function is required")
    library = library or standard_cell_library()
    if assignment is None:
        assignment = PinAssignment.for_functions(functions)
    permuted = assignment.apply(list(functions))
    num_inputs = permuted[0].num_inputs
    num_outputs = permuted[0].num_outputs
    selects = num_select_inputs(len(functions))

    result = Netlist(name, library)
    data_nets = [result.add_input(f"i[{k}]") for k in range(num_inputs)]
    select_nets = [result.add_input(f"sel[{k}]") for k in range(selects)]

    # Instantiate each synthesised function with renamed internal nets.
    per_function_outputs: List[List[str]] = []
    for index, function in enumerate(permuted):
        sub = synthesize(function, library=library, effort="standard").netlist
        mapping = {CONST0_NET: CONST0_NET, CONST1_NET: CONST1_NET}
        for position, net in enumerate(sub.primary_inputs):
            mapping[net] = data_nets[position]

        def _mapped(net: str, function_index: int = index, table: dict = mapping) -> str:
            if net not in table:
                table[net] = result.new_net(f"f{function_index}_")
            return table[net]

        for instance in sub.topological_order():
            new_inputs = [_mapped(net) for net in instance.inputs]
            result.add_instance(instance.cell, new_inputs, output=_mapped(instance.output))
        per_function_outputs.append([_mapped(net) for net in sub.primary_outputs])

    # Multiplexer trees on the outputs.
    for out_index in range(num_outputs):
        candidates = [per_function_outputs[f][out_index] for f in range(len(permuted))]
        net = _mux_tree(result, candidates, select_nets, 0)
        _drive_output(result, net, f"o[{out_index}]")
        result.add_output(f"o[{out_index}]")
    return result


def _mux_tree(netlist: Netlist, nets: List[str], selects: List[str], level: int) -> str:
    if len(nets) == 1:
        return nets[0]
    select = selects[level]
    next_level: List[str] = []
    for index in range(0, len(nets), 2):
        if index + 1 < len(nets):
            instance = netlist.add_instance("MUX2", [nets[index], nets[index + 1], select])
            next_level.append(instance.output)
        else:
            next_level.append(nets[index])
    return _mux_tree(netlist, next_level, selects, level + 1)


def _drive_output(netlist: Netlist, source: str, output_net: str) -> None:
    if source == output_net:
        return
    if (
        netlist.driver_of(source) is not None
        and source not in netlist.primary_outputs
        and source not in netlist.primary_inputs
        and source not in (CONST0_NET, CONST1_NET)
    ):
        netlist.rename_net(source, output_net)
    else:
        netlist.add_instance("BUF", [source], output=output_net)

"""Phase I: multi-function merging and pin assignments."""

from .merged import MergedDesign, merge_functions, naive_merged_netlist, num_select_inputs
from .pinassign import PinAssignment

__all__ = [
    "PinAssignment",
    "MergedDesign",
    "merge_functions",
    "naive_merged_netlist",
    "num_select_inputs",
]

"""Sharded (multi-core) packed simulation over :mod:`repro.parallel`.

The packed engines put a whole :class:`~repro.sim.patterns.PatternBatch`
into one Python-int lane per net, which is already ~3 orders of magnitude
faster than row-by-row simulation — but a single batch still runs on one
core.  For *wide* batches (many thousands of patterns: presampling, fuzzing
campaigns, exhaustive extraction of 8-bit workloads) this module splits the
batch into contiguous shards, fans the shards out over the worker pool, and
stitches the per-shard lanes back together.

Everything here is **verdict-identical** to the unsharded path by
construction:

* shards are contiguous slices in batch order, so re-assembling the lanes
  (OR of shard lanes shifted by their offsets) reproduces the single-batch
  lanes bit for bit;
* "first difference" queries walk the shards in batch order and map the
  shard-local hit back through its offset, so the reported counterexample is
  the globally first differing pattern — exactly what the unsharded
  :func:`~repro.sim.prefilter._first_difference` finds.

Sharding only pays off when each shard carries enough patterns to amortise
the worker-pool round trip (pickling the netlist, forking the pool); below
:data:`MIN_SHARD_PATTERNS` patterns per shard the helpers transparently run
the plain single-core path, so callers can pass any ``jobs`` value
unconditionally.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Tuple

from ..logic.boolfunc import BoolFunction
from ..logic.truthtable import TruthTable
from ..netlist.netlist import Netlist
from ..parallel import parallel_map
from .engine import NetlistSimulator
from .patterns import PatternBatch

__all__ = [
    "MIN_SHARD_PATTERNS",
    "resolve_shards",
    "sharded_output_lanes",
    "sharded_extract_function",
    "sharded_first_difference_vs_function",
    "sharded_first_difference_vs_netlist",
    "sharded_sweep_select_space",
]

#: Minimum patterns per shard for fan-out to be worth the process round trip.
MIN_SHARD_PATTERNS = 1024


def resolve_shards(
    num_patterns: int, jobs: int, min_shard_patterns: int = MIN_SHARD_PATTERNS
) -> int:
    """Number of shards actually worth fanning out (1 = stay single-core).

    Clamped so every shard carries at least ``min_shard_patterns`` patterns
    (and never exceeds ``jobs`` or the pattern count).
    """
    if jobs <= 1 or num_patterns < 2 * max(1, min_shard_patterns):
        return 1
    return max(1, min(jobs, num_patterns // max(1, min_shard_patterns)))


def _output_lanes_task(task: Tuple) -> List[int]:
    """Worker task: output lanes of one shard (module-level so it pickles)."""
    netlist, cell_functions, shard = task
    return NetlistSimulator(netlist).output_lanes(shard, cell_functions)


def sharded_output_lanes(
    netlist: Netlist,
    batch: PatternBatch,
    cell_functions: Optional[Mapping[str, TruthTable]] = None,
    jobs: int = 1,
    min_shard_patterns: int = MIN_SHARD_PATTERNS,
) -> List[int]:
    """Primary-output lanes of ``batch``, computed over up to ``jobs`` cores.

    Identical to ``NetlistSimulator(netlist).output_lanes(batch, ...)`` for
    every ``jobs`` value; with ``jobs > 1`` and a wide enough batch the
    patterns are split into contiguous shards evaluated concurrently.
    """
    shards = resolve_shards(batch.num_patterns, jobs, min_shard_patterns)
    if shards == 1:
        return NetlistSimulator(netlist).output_lanes(batch, cell_functions)
    pieces = batch.split(shards)
    results = parallel_map(
        _output_lanes_task,
        [(netlist, cell_functions, shard) for _, shard in pieces],
        jobs=shards,
    )
    lanes = [0] * len(netlist.primary_outputs)
    for (offset, _), piece_lanes in zip(pieces, results):
        for index, lane in enumerate(piece_lanes):
            lanes[index] |= lane << offset
    return lanes


def sharded_extract_function(
    netlist: Netlist,
    cell_functions: Optional[Mapping[str, TruthTable]] = None,
    jobs: int = 1,
    name: Optional[str] = None,
    min_shard_patterns: int = MIN_SHARD_PATTERNS,
) -> BoolFunction:
    """Exhaustive extraction with the exhaustive batch sharded over workers.

    The 2^n minterm space is split into contiguous shards, so each worker
    simulates a slice of the truth table; the stitched function is identical
    to :meth:`NetlistSimulator.extract_function` for every ``jobs`` value.
    """
    num_inputs = len(netlist.primary_inputs)
    batch = PatternBatch.exhaustive(num_inputs)
    lanes = sharded_output_lanes(
        netlist, batch, cell_functions, jobs=jobs, min_shard_patterns=min_shard_patterns
    )
    return BoolFunction(
        [TruthTable(num_inputs, lane) for lane in lanes],
        name=name or netlist.name,
        input_names=list(netlist.primary_inputs),
        output_names=list(netlist.primary_outputs),
    )


def _first_difference_lanes(
    actual: Sequence[int], expected: Sequence[int]
) -> Optional[int]:
    """Lowest differing bit position over any lane pair (None when equal)."""
    # The single source of truth for "first difference" lives in the
    # prefilter module; sharding must find the same position it would.
    from .prefilter import _first_difference

    return _first_difference(list(zip(actual, expected)))


def _expected_function_lanes(
    function: BoolFunction, shard: PatternBatch, offset: int, exhaustive: bool
) -> List[int]:
    """Reference lanes of ``function`` over one shard.

    Over an exhaustive batch a shard's reference lane is simply a slice of
    the packed truth table; otherwise every shard pattern is evaluated
    word-by-word via the prefilter's reference-lane helper (shard
    ``word_at`` already yields the global input word — patterns carry their
    words, only their positions are offset).
    """
    if exhaustive:
        mask = (1 << shard.num_patterns) - 1
        return [(table.bits >> offset) & mask for table in function.outputs]
    from .prefilter import _candidate_lanes

    return _candidate_lanes(function, shard)


def _diff_vs_function_task(task: Tuple) -> Optional[int]:
    """Worker task: shard-local first difference against a reference function."""
    netlist, cell_functions, function, offset, shard, exhaustive = task
    actual = NetlistSimulator(netlist).output_lanes(shard, cell_functions)
    expected = _expected_function_lanes(function, shard, offset, exhaustive)
    return _first_difference_lanes(actual, expected)


def sharded_first_difference_vs_function(
    netlist: Netlist,
    function: BoolFunction,
    batch: PatternBatch,
    cell_functions: Optional[Mapping[str, TruthTable]] = None,
    exhaustive: bool = False,
    jobs: int = 1,
    min_shard_patterns: int = MIN_SHARD_PATTERNS,
) -> Optional[int]:
    """Global position of the first pattern where netlist and function differ.

    ``exhaustive`` marks ``batch`` as the full minterm enumeration, in which
    case the reference side is sliced straight out of the packed truth
    tables.  Workers compute both sides of their shard, so the whole
    comparison — not just the netlist half — scales with cores; the shards
    are scanned in batch order, making the answer the globally first
    difference (verdict-identical to the unsharded scan).
    """
    shards = resolve_shards(batch.num_patterns, jobs, min_shard_patterns)
    if shards == 1:
        actual = NetlistSimulator(netlist).output_lanes(batch, cell_functions)
        expected = _expected_function_lanes(function, batch, 0, exhaustive)
        return _first_difference_lanes(actual, expected)
    pieces = batch.split(shards)
    results = parallel_map(
        _diff_vs_function_task,
        [
            (netlist, cell_functions, function, offset, shard, exhaustive)
            for offset, shard in pieces
        ],
        jobs=shards,
    )
    for (offset, _), position in zip(pieces, results):
        if position is not None:
            return offset + position
    return None


def _sweep_block_task(task: Tuple) -> List[List[int]]:
    """Worker task: one select-block of a wide camouflage sweep."""
    (
        netlist,
        select_order,
        instance_selects,
        instance_configs,
        fixed_selects,
        num_free_selects,
    ) = task
    from .engine import _sweep_lanes, _tables_from_sweep_lanes

    lanes = _sweep_lanes(
        netlist, select_order, instance_selects, instance_configs, fixed_selects
    )
    return _tables_from_sweep_lanes(
        lanes, len(netlist.primary_inputs), num_free_selects
    )


def sharded_sweep_select_space(
    netlist: Netlist,
    select_order: Sequence[str],
    instance_selects: Mapping[str, Sequence[str]],
    instance_configs: Mapping[str, Mapping[Tuple[int, ...], object]],
    jobs: int = 1,
) -> List[List[int]]:
    """Camouflage select-space sweep sharded along the select dimension.

    A single packed pass over the combined (data × select) pattern space is
    capped at :data:`~repro.sim.engine.SWEEP_WIDTH_LIMIT` variables.  For
    wider spaces this helper pins the *high* select bits per block — each
    block is one packed pass over ``data × low selects``, exactly at the
    width limit — and fans the blocks over the worker pool.  Select word
    ``s`` lands in block ``s >> num_free_selects`` at local offset
    ``s & (2**num_free_selects - 1)``, so concatenating the block tables in
    block order reproduces the single-pass result bit for bit (the per-word
    tables are identical for every ``jobs`` value).
    """
    from .engine import SWEEP_WIDTH_LIMIT

    num_data = len(netlist.primary_inputs)
    num_selects = len(select_order)
    num_free = max(0, min(num_selects, SWEEP_WIDTH_LIMIT - num_data))
    free_nets = list(select_order[:num_free])
    fixed_nets = list(select_order[num_free:])
    tasks = []
    for block in range(1 << len(fixed_nets)):
        fixed = {
            net: (block >> offset) & 1 for offset, net in enumerate(fixed_nets)
        }
        tasks.append(
            (
                netlist,
                list(select_order),
                dict(instance_selects),
                dict(instance_configs),
                fixed,
                len(free_nets),
            )
        )
    block_tables = parallel_map(_sweep_block_task, tasks, jobs=jobs)
    tables: List[List[int]] = []
    for block in block_tables:
        tables.extend(block)
    return tables


def _diff_vs_netlist_task(task: Tuple) -> Optional[int]:
    """Worker task: shard-local first difference between two netlists."""
    netlist_a, netlist_b, cell_functions_a, cell_functions_b, shard = task
    lanes_a = NetlistSimulator(netlist_a).output_lanes(shard, cell_functions_a)
    lanes_b = NetlistSimulator(netlist_b).output_lanes(shard, cell_functions_b)
    return _first_difference_lanes(lanes_a, lanes_b)


def sharded_first_difference_vs_netlist(
    netlist_a: Netlist,
    netlist_b: Netlist,
    batch: PatternBatch,
    cell_functions_a: Optional[Mapping[str, TruthTable]] = None,
    cell_functions_b: Optional[Mapping[str, TruthTable]] = None,
    jobs: int = 1,
    min_shard_patterns: int = MIN_SHARD_PATTERNS,
) -> Optional[int]:
    """Global position of the first pattern where the two netlists differ."""
    shards = resolve_shards(batch.num_patterns, jobs, min_shard_patterns)
    if shards == 1:
        lanes_a = NetlistSimulator(netlist_a).output_lanes(batch, cell_functions_a)
        lanes_b = NetlistSimulator(netlist_b).output_lanes(batch, cell_functions_b)
        return _first_difference_lanes(lanes_a, lanes_b)
    pieces = batch.split(shards)
    results = parallel_map(
        _diff_vs_netlist_task,
        [
            (netlist_a, netlist_b, cell_functions_a, cell_functions_b, shard)
            for _, shard in pieces
        ],
        jobs=shards,
    )
    for (offset, _), position in zip(pieces, results):
        if position is not None:
            return offset + position
    return None

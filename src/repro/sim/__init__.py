"""Word-parallel simulation subsystem.

Every net of a circuit carries a packed Python-int *lane*: bit ``p`` of the
lane is the net's value under pattern ``p`` of a :class:`PatternBatch`.  This
generalises the trick :class:`~repro.logic.truthtable.TruthTable` uses for
exhaustive simulation to arbitrary batches of input patterns, and gives three
services the attack / verification flows build on:

* :mod:`repro.sim.patterns` — pattern sources: explicit batches, exhaustive
  enumeration, seeded random streams, and counterexample replay buffers that
  persist DIPs/witnesses across calls;
* :mod:`repro.sim.engine` — the packed simulation engines for
  :class:`~repro.netlist.netlist.Netlist` (including per-instance
  ``cell_functions`` overrides for camouflaged cells) and
  :class:`~repro.aig.aig.Aig`, plus the camouflage select-space sweep;
* :mod:`repro.sim.prefilter` — simulation-guided pre-filters that refute or
  confirm queries *before* a SAT solver is invoked (fuzz-before-SAT).
"""

from .engine import (
    AigSimulator,
    NetlistSimulator,
    simulate_batch,
    simulate_words,
    sweep_select_space,
)
from .patterns import PatternBatch, RandomPatternSource, ReplayBuffer
from .shard import (
    MIN_SHARD_PATTERNS,
    resolve_shards,
    sharded_extract_function,
    sharded_output_lanes,
)
from .prefilter import (
    FUZZ_ENV_VAR,
    FuzzOutcome,
    PossibilityAnalysis,
    fuzz_enabled,
    fuzz_netlist_vs_function,
    fuzz_netlist_vs_netlist,
    possibility_refute,
)

__all__ = [
    "PatternBatch",
    "RandomPatternSource",
    "ReplayBuffer",
    "NetlistSimulator",
    "AigSimulator",
    "simulate_batch",
    "simulate_words",
    "sweep_select_space",
    "MIN_SHARD_PATTERNS",
    "resolve_shards",
    "sharded_output_lanes",
    "sharded_extract_function",
    "FUZZ_ENV_VAR",
    "FuzzOutcome",
    "fuzz_enabled",
    "fuzz_netlist_vs_function",
    "fuzz_netlist_vs_netlist",
    "PossibilityAnalysis",
    "possibility_refute",
]

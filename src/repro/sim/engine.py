"""Packed word-parallel simulation engines for netlists and AIGs.

The engines evaluate a circuit on a whole :class:`~repro.sim.patterns.
PatternBatch` in one topological pass: every net carries a packed integer
*lane* whose bit ``p`` is the net's value under pattern ``p``.  A cell with
``k`` pins costs at most ``2**k`` bitwise operations on lanes — independent
of the number of patterns — so oracle queries, fuzz testing, plausibility
sweeps and exhaustive extraction all run at big-integer speed instead of one
Python dispatch per (instance, pattern) pair.

:class:`NetlistSimulator` supports the same per-instance ``cell_functions``
overrides as :mod:`repro.netlist.simulate`, which is how camouflaged
configurations are evaluated, and :func:`sweep_select_space` folds an entire
camouflage select space into a single packed pass (patterns range over
*data inputs × select words* simultaneously).
"""

from __future__ import annotations

from array import array
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .._bitops import mask_for, popcount, variable_pattern
from ..aig.aig import Aig, is_complemented, node_of
from ..logic.boolfunc import BoolFunction
from ..logic.truthtable import TruthTable
from ..netlist.netlist import CONST0_NET, CONST1_NET, Netlist, NetlistError
from ..obs import metrics as obs_metrics
from .patterns import PatternBatch

__all__ = [
    "evaluate_table_lanes",
    "NetlistSimulator",
    "AigSimulator",
    "simulate_batch",
    "simulate_words",
    "sweep_select_space",
]


def evaluate_table_lanes(
    bits: int, arity: int, input_lanes: Sequence[int], mask: int
) -> int:
    """Evaluate a packed truth table on packed input lanes.

    ``bits`` is the table of an ``arity``-input function; ``input_lanes[i]``
    carries input ``i`` over the batch; ``mask`` is the all-ones lane.  The
    result lane holds the function value per pattern.  The on-set or the
    off-set is expanded, whichever is smaller.
    """
    if arity == 0:
        return mask if bits & 1 else 0
    full = mask_for(arity)
    bits &= full
    if bits == 0:
        return 0
    if bits == full:
        return mask
    ones = popcount(bits)
    invert = ones * 2 > (1 << arity)
    rows = bits ^ full if invert else bits
    result = 0
    remaining = rows
    while remaining:
        low = remaining & -remaining
        row = low.bit_length() - 1
        remaining ^= low
        term = mask
        for var in range(arity):
            lane = input_lanes[var]
            term &= lane if (row >> var) & 1 else lane ^ mask
            if not term:
                break
        result |= term
    return result ^ mask if invert else result


def _word_from_lanes(lanes: Sequence[int], position: int) -> int:
    word = 0
    for index, lane in enumerate(lanes):
        if (lane >> position) & 1:
            word |= 1 << index
    return word


#: Widest cell the native lane evaluator accepts (a 2**16-row table is 8 KiB;
#: anything wider falls back to the pure bigint path for that simulator).
_NATIVE_MAX_ARITY = 16

#: Largest batch routed to the native evaluator.  Small batches — the
#: fuzz-before-SAT pre-filters simulate 64-256 patterns per call — are
#: dominated by per-lane Python overhead, which the compiled core removes
#: (4-5x).  On very large batches CPython's bigint kernels already run the
#: word loops at native speed and the per-net pack/unpack would make the
#: extension a net loss, so those stay on the pure path (both paths are
#: bit-identical; this is purely a throughput heuristic).
_NATIVE_MAX_PATTERNS = 8192


def _resolve_sim_backend(requested: Optional[str]) -> Tuple[str, Optional[Any]]:
    """Resolve the simulator backend to ("pure"|"native", core module)."""
    from .. import backend as backend_mod

    active = backend_mod.active_backend(requested)
    if active == "native":
        return active, backend_mod.native_module()
    return active, None


def _table_bytes(bits: int, arity: int) -> bytes:
    """Packed little-endian truth-table bytes for the native evaluator."""
    rows = 1 << arity
    bits &= (1 << rows) - 1
    return bits.to_bytes(max(1, (rows + 7) >> 3), "little")


def _lane_bytes(lane: int, nwords: int) -> bytes:
    return lane.to_bytes(nwords * 8, "little")


class NetlistSimulator:
    """Word-parallel simulator for a :class:`~repro.netlist.netlist.Netlist`.

    The topological order and per-instance nominal functions are resolved
    once at construction, so repeated batches — and repeated configuration
    overrides of the *same* netlist, the camouflage verification pattern —
    pay only the packed evaluation itself.

    ``cell_functions`` (at construction or per call, the call-level mapping
    winning instance-by-instance) replaces the logic function of individual
    instances, exactly as in :func:`repro.netlist.simulate.extract_function`.
    """

    def __init__(
        self,
        netlist: Netlist,
        cell_functions: Optional[Mapping[str, TruthTable]] = None,
        backend: Optional[str] = None,
    ):
        self._netlist = netlist
        self._order = netlist.topological_order()
        self._base_functions: List[Tuple[str, TruthTable, Tuple[str, ...], str]] = []
        for instance in self._order:
            function = netlist.library[instance.cell].function
            self._base_functions.append(
                (instance.name, function, tuple(instance.inputs), instance.output)
            )
        self._cell_functions = dict(cell_functions) if cell_functions else None
        self.backend, self._core = _resolve_sim_backend(backend)
        self._program = self._build_native_program() if self._core else None
        self._func_bytes: Dict[Tuple[int, int], bytes] = {}
        self._default_funcs: Optional[List[bytes]] = None

    def _build_native_program(self):
        """Compile the topological pass into flat index arrays for the core.

        Returns ``None`` when the netlist is outside the native evaluator's
        envelope (over-wide cells, or an instance reading an undriven net —
        the pure path raises ``KeyError`` for those, and falling back keeps
        that behaviour identical).
        """
        netlist = self._netlist
        net_index: Dict[str, int] = {CONST0_NET: 0, CONST1_NET: 1}
        for net in netlist.primary_inputs:
            if net not in net_index:
                net_index[net] = len(net_index)
        input_idx = array("i", (net_index[net] for net in netlist.primary_inputs))
        out_idx = array("i")
        arities = array("i")
        in_offsets = array("i", [0])
        in_flat = array("i")
        for _, function, inputs, output_net in self._base_functions:
            if len(inputs) > _NATIVE_MAX_ARITY:
                return None
            for net in inputs:
                index = net_index.get(net)
                if index is None:
                    return None
                in_flat.append(index)
            in_offsets.append(len(in_flat))
            if output_net not in net_index:
                net_index[output_net] = len(net_index)
            out_idx.append(net_index[output_net])
            arities.append(len(inputs))
        return {
            "net_index": net_index,
            "num_nets": len(net_index),
            "input_idx": input_idx,
            "out_idx": out_idx,
            "arities": arities,
            "in_offsets": in_offsets,
            "in_flat": in_flat,
        }

    @property
    def netlist(self) -> Netlist:
        """The simulated netlist."""
        return self._netlist

    @property
    def num_inputs(self) -> int:
        """Number of primary inputs."""
        return len(self._netlist.primary_inputs)

    # -------------------------------------------------------------- #
    # Core pass
    # -------------------------------------------------------------- #
    def _resolve(
        self, name: str, nominal: TruthTable, cell_functions
    ) -> TruthTable:
        if cell_functions is not None:
            override = cell_functions.get(name)
            if override is not None:
                return override
        if self._cell_functions is not None:
            override = self._cell_functions.get(name)
            if override is not None:
                return override
        return nominal

    def net_lanes(
        self,
        batch: PatternBatch,
        cell_functions: Optional[Mapping[str, TruthTable]] = None,
    ) -> Dict[str, int]:
        """Simulate the batch and return the lane of every net."""
        netlist = self._netlist
        if batch.num_inputs != len(netlist.primary_inputs):
            raise NetlistError(
                f"batch assigns {batch.num_inputs} inputs but the netlist has "
                f"{len(netlist.primary_inputs)}"
            )
        mask = batch.mask
        if (
            self._program is not None
            and 0 < batch.num_patterns <= _NATIVE_MAX_PATTERNS
        ):
            lanes = self._net_lanes_native(batch, cell_functions)
            if lanes is not None:
                obs_metrics.counter("repro_sim_batches_total")
                obs_metrics.counter("repro_sim_patterns_total", batch.num_patterns)
                return lanes
        lanes: Dict[str, int] = {CONST0_NET: 0, CONST1_NET: mask}
        for index, net in enumerate(netlist.primary_inputs):
            lanes[net] = batch.lane(index)
        for name, nominal, inputs, output_net in self._base_functions:
            function = self._resolve(name, nominal, cell_functions)
            if function.num_vars != len(inputs):
                raise NetlistError(
                    f"cell function override for instance {name!r} has "
                    f"{function.num_vars} variables but the instance has "
                    f"{len(inputs)} pins"
                )
            input_lanes = [lanes[net] for net in inputs]
            lanes[output_net] = evaluate_table_lanes(
                function.bits, function.num_vars, input_lanes, mask
            )
        obs_metrics.counter("repro_sim_batches_total")
        obs_metrics.counter("repro_sim_patterns_total", batch.num_patterns)
        return lanes

    def _net_lanes_native(
        self, batch: PatternBatch, cell_functions
    ) -> Optional[Dict[str, int]]:
        """Packed pass through the compiled core (bit-identical to pure).

        Returns ``None`` when a per-call override is outside the native
        envelope (over-wide table), deferring to the pure path.
        """
        program = self._program
        if cell_functions is None and self._default_funcs is not None:
            funcs = self._default_funcs
        else:
            funcs = []
            cache = self._func_bytes
            for name, nominal, inputs, _ in self._base_functions:
                function = self._resolve(name, nominal, cell_functions)
                if function.num_vars != len(inputs):
                    raise NetlistError(
                        f"cell function override for instance {name!r} has "
                        f"{function.num_vars} variables but the instance has "
                        f"{len(inputs)} pins"
                    )
                if function.num_vars > _NATIVE_MAX_ARITY:
                    return None
                key = (function.num_vars, function.bits)
                packed = cache.get(key)
                if packed is None:
                    packed = _table_bytes(function.bits, function.num_vars)
                    cache[key] = packed
                funcs.append(packed)
            if cell_functions is None:
                # The resolved tables are fixed after construction; reuse
                # the packed list on every override-free call.
                self._default_funcs = funcs
        nwords = (batch.num_patterns + 63) >> 6
        mask = batch.mask
        raw = self._core.run_netlist(
            program["num_nets"],
            nwords,
            _lane_bytes(mask, nwords),
            program["input_idx"],
            [
                _lane_bytes(batch.lane(index), nwords)
                for index in range(batch.num_inputs)
            ],
            program["out_idx"],
            program["arities"],
            program["in_offsets"],
            program["in_flat"],
            funcs,
        )
        stride = nwords * 8
        lanes: Dict[str, int] = {}
        for net, index in program["net_index"].items():
            lanes[net] = int.from_bytes(
                raw[index * stride : (index + 1) * stride], "little"
            )
        return lanes

    def output_lanes(
        self,
        batch: PatternBatch,
        cell_functions: Optional[Mapping[str, TruthTable]] = None,
    ) -> List[int]:
        """Simulate the batch and return one lane per primary output."""
        lanes = self.net_lanes(batch, cell_functions)
        outputs: List[int] = []
        for net in self._netlist.primary_outputs:
            if net not in lanes:
                raise NetlistError(f"primary output {net!r} is undriven")
            outputs.append(lanes[net])
        return outputs

    # -------------------------------------------------------------- #
    # Word-level conveniences
    # -------------------------------------------------------------- #
    def simulate_words(
        self,
        words: Sequence[int],
        cell_functions: Optional[Mapping[str, TruthTable]] = None,
    ) -> List[int]:
        """Evaluate a batch of input words, returning one output word each."""
        if not words:
            return []
        batch = PatternBatch.from_words(len(self._netlist.primary_inputs), words)
        lanes = self.output_lanes(batch, cell_functions)
        return [
            _word_from_lanes(lanes, position) for position in range(batch.num_patterns)
        ]

    def extract_function(
        self,
        cell_functions: Optional[Mapping[str, TruthTable]] = None,
        name: Optional[str] = None,
    ) -> BoolFunction:
        """Exhaustively simulate into a :class:`BoolFunction` (one packed pass)."""
        netlist = self._netlist
        num_inputs = len(netlist.primary_inputs)
        batch = PatternBatch.exhaustive(num_inputs)
        lanes = self.output_lanes(batch, cell_functions)
        return BoolFunction(
            [TruthTable(num_inputs, lane) for lane in lanes],
            name=name or netlist.name,
            input_names=list(netlist.primary_inputs),
            output_names=list(netlist.primary_outputs),
        )


class AigSimulator:
    """Word-parallel simulator for an :class:`~repro.aig.aig.Aig`."""

    def __init__(self, aig: Aig, backend: Optional[str] = None):
        self._aig = aig
        self.backend, self._core = _resolve_sim_backend(backend)
        self._program = self._build_native_program() if self._core else None

    def _build_native_program(self):
        """Flatten the AIG into fanin index arrays for the compiled core."""
        aig = self._aig
        num_nodes = aig.num_nodes
        input_nodes = array(
            "i", (node_of(aig.input_literal(index)) for index in range(aig.num_inputs))
        )
        fanin0 = array("i", [0]) * num_nodes
        fanin1 = array("i", [0]) * num_nodes
        is_and = bytearray(num_nodes)
        for node in range(1, num_nodes):
            if aig.is_input_node(node):
                continue
            literal0, literal1 = aig.fanins(node)
            fanin0[node] = literal0
            fanin1[node] = literal1
            is_and[node] = 1
        return {
            "input_nodes": input_nodes,
            "fanin0": fanin0,
            "fanin1": fanin1,
            "is_and": bytes(is_and),
        }

    @property
    def aig(self) -> Aig:
        """The simulated AIG."""
        return self._aig

    def node_lanes(self, batch: PatternBatch) -> List[int]:
        """Simulate the batch; entry ``n`` is the lane of node ``n``."""
        aig = self._aig
        if batch.num_inputs != aig.num_inputs:
            raise ValueError(
                f"batch assigns {batch.num_inputs} inputs but the AIG has "
                f"{aig.num_inputs}"
            )
        mask = batch.mask
        if (
            self._program is not None
            and 0 < batch.num_patterns <= _NATIVE_MAX_PATTERNS
        ):
            program = self._program
            nwords = (batch.num_patterns + 63) >> 6
            raw = self._core.run_aig(
                aig.num_nodes,
                nwords,
                _lane_bytes(mask, nwords),
                program["input_nodes"],
                [
                    _lane_bytes(batch.lane(index), nwords)
                    for index in range(aig.num_inputs)
                ],
                program["fanin0"],
                program["fanin1"],
                program["is_and"],
            )
            stride = nwords * 8
            return [
                int.from_bytes(raw[node * stride : (node + 1) * stride], "little")
                for node in range(aig.num_nodes)
            ]
        lanes = [0] * aig.num_nodes
        for index in range(aig.num_inputs):
            lanes[node_of(aig.input_literal(index))] = batch.lane(index)
        for node in range(1, aig.num_nodes):
            if aig.is_input_node(node):
                continue
            fanin0, fanin1 = aig.fanins(node)
            value0 = lanes[node_of(fanin0)]
            if is_complemented(fanin0):
                value0 ^= mask
            value1 = lanes[node_of(fanin1)]
            if is_complemented(fanin1):
                value1 ^= mask
            lanes[node] = value0 & value1
        return lanes

    def output_lanes(self, batch: PatternBatch) -> List[int]:
        """Simulate the batch and return one lane per primary output."""
        lanes = self.node_lanes(batch)
        mask = batch.mask
        outputs: List[int] = []
        for literal in self._aig.outputs:
            lane = lanes[node_of(literal)]
            outputs.append(lane ^ mask if is_complemented(literal) else lane)
        return outputs

    def simulate_words(self, words: Sequence[int]) -> List[int]:
        """Evaluate a batch of input words, returning one output word each."""
        if not words:
            return []
        batch = PatternBatch.from_words(self._aig.num_inputs, words)
        lanes = self.output_lanes(batch)
        return [
            _word_from_lanes(lanes, position) for position in range(batch.num_patterns)
        ]


def simulate_batch(
    netlist: Netlist,
    batch: PatternBatch,
    cell_functions: Optional[Mapping[str, TruthTable]] = None,
) -> Dict[str, int]:
    """One-shot packed simulation: lane of every net over the batch."""
    return NetlistSimulator(netlist).net_lanes(batch, cell_functions)


def simulate_words(
    netlist: Netlist,
    words: Sequence[int],
    cell_functions: Optional[Mapping[str, TruthTable]] = None,
) -> List[int]:
    """One-shot packed simulation of explicit input words (output word each)."""
    return NetlistSimulator(netlist).simulate_words(words, cell_functions)


#: Beyond this many combined (data + select) variables a single packed sweep
#: would manipulate multi-megabit integers; wider sweeps are sharded over the
#: select dimension (one block of select words per packed pass, fanned over
#: the worker pool — see :func:`repro.sim.shard.sharded_sweep_select_space`).
SWEEP_WIDTH_LIMIT = 20


def sweep_select_space(
    netlist: Netlist,
    select_order: Sequence[str],
    instance_selects: Mapping[str, Sequence[str]],
    instance_configs: Mapping[str, Mapping[Tuple[int, ...], TruthTable]],
    jobs: int = 1,
) -> List[List[int]]:
    """Evaluate every camouflage configuration with packed passes.

    The pattern space is the product of the data inputs and the select word:
    pattern ``x + (s << num_data_inputs)`` applies data word ``x`` under
    select word ``s``.  A camouflaged instance contributes, per select
    assignment of its local select nets, its configured function masked to
    the patterns where that assignment is active — so a single topological
    pass produces the realised behaviour of *all* ``2**num_selects``
    configurations.

    When the combined (data + select) width exceeds
    :data:`SWEEP_WIDTH_LIMIT`, the sweep is split along the select
    dimension into blocks that fit the packed width — the high select bits
    are pinned per block and the blocks fan out over the worker pool
    (``jobs``).  The result is identical for every ``jobs`` value and for
    the sharded vs single-pass path.

    Returns one word-level lookup table per select word (the same tables
    ``extract_function(...).lookup_table()`` yields per configuration).
    """
    num_data = len(netlist.primary_inputs)
    num_selects = len(select_order)
    width = num_data + num_selects
    if width > SWEEP_WIDTH_LIMIT:
        if num_data > SWEEP_WIDTH_LIMIT:
            raise ValueError(
                f"select sweep needs {num_data} data variables per packed "
                f"pass, more than the width limit ({SWEEP_WIDTH_LIMIT}); "
                f"exhaustive data enumeration is infeasible at this width"
            )
        from .shard import sharded_sweep_select_space

        return sharded_sweep_select_space(
            netlist, select_order, instance_selects, instance_configs, jobs=jobs
        )
    lanes = _sweep_lanes(
        netlist, select_order, instance_selects, instance_configs, {}
    )
    return _tables_from_sweep_lanes(lanes, num_data, num_selects)


def _sweep_lanes(
    netlist: Netlist,
    select_order: Sequence[str],
    instance_selects: Mapping[str, Sequence[str]],
    instance_configs: Mapping[str, Mapping[Tuple[int, ...], TruthTable]],
    fixed_selects: Mapping[str, int],
) -> List[int]:
    """Primary-output lanes of one packed sweep pass.

    ``fixed_selects`` pins a subset of the select nets to constants (the
    block sharding uses this to sweep a slice of the select space); the
    remaining *free* selects become pattern variables above the data inputs,
    in ``select_order`` order.
    """
    data_inputs = list(netlist.primary_inputs)
    num_data = len(data_inputs)
    free_selects = [net for net in select_order if net not in fixed_selects]
    width = num_data + len(free_selects)
    mask = mask_for(width)
    lanes: Dict[str, int] = {CONST0_NET: 0, CONST1_NET: mask}
    for index, net in enumerate(data_inputs):
        lanes[net] = variable_pattern(index, width)
    select_lanes = {
        net: variable_pattern(num_data + index, width)
        for index, net in enumerate(free_selects)
    }
    for net, value in fixed_selects.items():
        select_lanes[net] = mask if value else 0

    for instance in netlist.topological_order():
        input_lanes = [lanes[net] for net in instance.inputs]
        configs = instance_configs.get(instance.name)
        if configs is None:
            function = netlist.library[instance.cell].function
            lanes[instance.output] = evaluate_table_lanes(
                function.bits, function.num_vars, input_lanes, mask
            )
            continue
        local_selects = list(instance_selects[instance.name])
        output_lane = 0
        for assignment, function in configs.items():
            if len(assignment) != len(local_selects):
                raise ValueError(
                    f"select assignment of instance {instance.name!r} has "
                    f"{len(assignment)} values for {len(local_selects)} select nets"
                )
            active = mask
            for value, net in zip(assignment, local_selects):
                lane = select_lanes[net]
                active &= lane if value else lane ^ mask
            if not active:
                continue
            output_lane |= active & evaluate_table_lanes(
                function.bits, function.num_vars, input_lanes, mask
            )
        lanes[instance.output] = output_lane

    output_lanes: List[int] = []
    for net in netlist.primary_outputs:
        if net not in lanes:
            raise NetlistError(f"primary output {net!r} is undriven")
        output_lanes.append(lanes[net])
    return output_lanes


def _tables_from_sweep_lanes(
    output_lanes: Sequence[int], num_data: int, num_free_selects: int
) -> List[List[int]]:
    """Unpack sweep lanes into one lookup table per (free) select word."""
    data_rows = 1 << num_data
    data_mask = (1 << data_rows) - 1
    tables: List[List[int]] = []
    for select_word in range(1 << num_free_selects):
        blocks = [
            (lane >> (select_word * data_rows)) & data_mask for lane in output_lanes
        ]
        table = [
            _word_from_lanes(blocks, position) for position in range(data_rows)
        ]
        tables.append(table)
    return tables

"""Simulation-guided pre-filters: kill queries before the SAT solver runs.

Classic SAT practice runs cheap massively-parallel random simulation before
every expensive solver call; most candidates die in the simulator.  This
module packages that discipline for the three query shapes of this project:

* :func:`fuzz_netlist_vs_function` / :func:`fuzz_netlist_vs_netlist` —
  equivalence queries.  Random (or exhaustive, when the input space is
  small) packed simulation either produces a genuine counterexample — the
  query is *refuted* without SAT — or, when the pass was exhaustive, proves
  equivalence outright.
* :func:`possibility_refute` — plausibility queries ("can some assignment
  of plausible functions realise this candidate?").  A three-valued packed
  pass computes, per input word and net, which values are achievable under
  *any* per-instance choice; a candidate needing an unachievable output bit
  is refuted.  The per-word choices are uncorrelated, so the achievable set
  is over-approximated and a refutation is always sound.  The positive side
  of the same query is handled by the CEGAR loop in
  :class:`~repro.attacks.decamouflage.PlausibleFunctionOracle`, which uses
  the packed engine to verify solver models against the whole input space.

All pre-filters are *verdict-preserving*: they only ever return answers
that the solver would also have returned.  They are **enabled by default**;
setting the ``REPRO_FUZZ`` environment variable to ``0``/``false``/``no``/
``off`` (or passing ``prefilter=False`` at the call sites) opts *out*, which
is what the solver-call-count regression tests do — they pin solver
behaviour explicitly instead of relying on a global default.

Wide batches can additionally be **sharded** over the worker pool
(``jobs > 1``): the batch is split into contiguous shards evaluated
concurrently via :mod:`repro.sim.shard`, and the globally first
counterexample is reported — verdicts, replay-buffer contents and
counterexample words are identical to the single-core pass for every
``jobs`` value.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .._bitops import mask_for
from ..logic.boolfunc import BoolFunction
from ..logic.truthtable import TruthTable
from ..netlist.netlist import CONST0_NET, CONST1_NET, Netlist, NetlistError
from .engine import NetlistSimulator
from .patterns import PatternBatch, RandomPatternSource, ReplayBuffer

__all__ = [
    "FUZZ_ENV_VAR",
    "fuzz_enabled",
    "FuzzOutcome",
    "FUZZ_EXHAUSTIVE_LIMIT",
    "DEFAULT_FUZZ_PATTERNS",
    "fuzz_netlist_vs_function",
    "fuzz_netlist_vs_netlist",
    "PossibilityAnalysis",
    "possibility_refute",
]

#: Environment variable enabling the fuzz-before-SAT paths ("1" = on).
FUZZ_ENV_VAR = "REPRO_FUZZ"

#: Input counts up to this bound are fuzzed exhaustively (a complete check).
FUZZ_EXHAUSTIVE_LIMIT = 12

#: Random patterns per fuzz round when the input space is too wide to enumerate.
DEFAULT_FUZZ_PATTERNS = 64


def fuzz_enabled(explicit: Optional[bool] = None) -> bool:
    """Resolve a fuzz-before-SAT switch: explicit argument wins, else env.

    The pre-filters are **on by default**; the environment variable
    ``REPRO_FUZZ`` opts *out* when set to ``0``/``false``/``no``/``off``
    (anything else, including unset, leaves them on).  Call sites that need
    bit-stable solver transcripts pass ``prefilter=False`` explicitly.
    """
    if explicit is not None:
        return explicit
    return os.environ.get(FUZZ_ENV_VAR, "").strip().lower() not in (
        "0", "false", "no", "off",
    )


@dataclass
class FuzzOutcome:
    """Result of one fuzz pass.

    ``counterexample`` is an input word on which the two sides differ (None
    when none was found); ``complete`` is True when the pass covered the
    whole input space, in which case "no counterexample" *proves* equality.
    """

    counterexample: Optional[int] = None
    complete: bool = False
    patterns: int = 0

    @property
    def refuted(self) -> bool:
        """True when a genuine counterexample was found."""
        return self.counterexample is not None

    @property
    def proven(self) -> bool:
        """True when the (exhaustive) pass proved the two sides equal."""
        return self.complete and self.counterexample is None

    def telemetry(self, label: str = "") -> "RunTelemetry":
        """The pass as a unified telemetry record (``sim`` scope)."""
        from ..telemetry import RunTelemetry

        record = RunTelemetry(label=label)
        record.record("sim", "patterns", self.patterns)
        record.record("sim", "complete", int(self.complete))
        record.record("sim", "refuted", int(self.refuted))
        return record


def _fuzz_batch(
    num_inputs: int,
    patterns: int,
    seed: int,
    replay: Optional[ReplayBuffer],
) -> Tuple[PatternBatch, bool]:
    """Choose the fuzz batch: exhaustive when small, else replay + random."""
    if num_inputs <= FUZZ_EXHAUSTIVE_LIMIT:
        return PatternBatch.exhaustive(num_inputs), True
    words: List[int] = []
    if replay is not None:
        # One buffer may be shared between circuits of different widths;
        # drop words that do not fit this circuit (as ReplayBuffer.batch does).
        space = 1 << num_inputs
        words.extend(
            word for word in replay.words(limit=patterns) if 0 <= word < space
        )
    source = RandomPatternSource(seed)
    needed = max(patterns - len(words), 1)
    words.extend(source.words(num_inputs, needed))
    return PatternBatch.from_words(num_inputs, words), False


def _candidate_lanes(function: BoolFunction, batch: PatternBatch) -> List[int]:
    """The expected output lanes of a reference function over a batch."""
    lanes = [0] * function.num_outputs
    for position in range(batch.num_patterns):
        word = batch.word_at(position)
        value = function.evaluate_word(word)
        for index in range(function.num_outputs):
            if (value >> index) & 1:
                lanes[index] |= 1 << position
    return lanes


def _first_difference(lane_pairs: Sequence[Tuple[int, int]]) -> Optional[int]:
    """Pattern index of the first differing bit over any lane pair."""
    combined = 0
    for lane_a, lane_b in lane_pairs:
        combined |= lane_a ^ lane_b
    if not combined:
        return None
    return (combined & -combined).bit_length() - 1


def fuzz_netlist_vs_function(
    netlist: Netlist,
    function: BoolFunction,
    cell_functions: Optional[Mapping[str, TruthTable]] = None,
    patterns: int = DEFAULT_FUZZ_PATTERNS,
    seed: int = 1,
    replay: Optional[ReplayBuffer] = None,
    simulator: Optional[NetlistSimulator] = None,
    exhaustive_lanes: Optional[Sequence[int]] = None,
    jobs: int = 1,
) -> FuzzOutcome:
    """Fuzz a netlist against a reference function.

    Exhaustive (and therefore *complete*) when the input count is at most
    :data:`FUZZ_EXHAUSTIVE_LIMIT`; otherwise replay-buffer words are tried
    first, topped up with seeded random patterns.  A found counterexample is
    recorded in the replay buffer.  Callers checking many candidates against
    one netlist can pass the (candidate-independent) ``exhaustive_lanes``
    they cached so the exhaustive pass is simulated only once.  With
    ``jobs > 1`` a wide batch is sharded over the worker pool (see
    :mod:`repro.sim.shard`); the outcome is identical for every ``jobs``.
    """
    from .shard import resolve_shards, sharded_first_difference_vs_function

    num_inputs = len(netlist.primary_inputs)
    batch, complete = _fuzz_batch(num_inputs, patterns, seed, replay)
    if complete and exhaustive_lanes is not None:
        expected = [table.bits for table in function.outputs]
        position = _first_difference(list(zip(exhaustive_lanes, expected)))
    elif resolve_shards(batch.num_patterns, jobs) > 1:
        position = sharded_first_difference_vs_function(
            netlist, function, batch, cell_functions, exhaustive=complete, jobs=jobs
        )
    else:
        simulator = simulator if simulator is not None else NetlistSimulator(netlist)
        actual = simulator.output_lanes(batch, cell_functions)
        expected = (
            [table.bits for table in function.outputs]
            if complete
            else _candidate_lanes(function, batch)
        )
        position = _first_difference(list(zip(actual, expected)))
    if position is None:
        return FuzzOutcome(None, complete, batch.num_patterns)
    word = batch.word_at(position)
    if replay is not None:
        replay.add(word)
    return FuzzOutcome(word, complete, batch.num_patterns)


def fuzz_netlist_vs_netlist(
    netlist_a: Netlist,
    netlist_b: Netlist,
    cell_functions_a: Optional[Mapping[str, TruthTable]] = None,
    cell_functions_b: Optional[Mapping[str, TruthTable]] = None,
    patterns: int = DEFAULT_FUZZ_PATTERNS,
    seed: int = 1,
    replay: Optional[ReplayBuffer] = None,
    jobs: int = 1,
) -> FuzzOutcome:
    """Fuzz two netlists against each other on a shared pattern batch.

    With ``jobs > 1`` a wide batch is sharded over the worker pool; the
    outcome is identical for every ``jobs`` value.
    """
    from .shard import resolve_shards, sharded_first_difference_vs_netlist

    num_inputs = len(netlist_a.primary_inputs)
    if num_inputs != len(netlist_b.primary_inputs):
        raise ValueError("netlists have different numbers of primary inputs")
    batch, complete = _fuzz_batch(num_inputs, patterns, seed, replay)
    if resolve_shards(batch.num_patterns, jobs) > 1:
        position = sharded_first_difference_vs_netlist(
            netlist_a, netlist_b, batch, cell_functions_a, cell_functions_b, jobs=jobs
        )
    else:
        lanes_a = NetlistSimulator(netlist_a).output_lanes(batch, cell_functions_a)
        lanes_b = NetlistSimulator(netlist_b).output_lanes(batch, cell_functions_b)
        position = _first_difference(list(zip(lanes_a, lanes_b)))
    if position is None:
        return FuzzOutcome(None, complete, batch.num_patterns)
    word = batch.word_at(position)
    if replay is not None:
        replay.add(word)
    return FuzzOutcome(word, complete, batch.num_patterns)


# ------------------------------------------------------------------ #
# Plausibility pre-filters (camouflaged netlists)
# ------------------------------------------------------------------ #
class PossibilityAnalysis:
    """Three-valued achievability maps of a camouflaged netlist.

    For every output and input word the analysis records whether the value
    0 and the value 1 are each achievable under *some* per-instance choice
    of plausible function (choices uncorrelated across words and instances,
    so the sets only ever grow — an over-approximation).  The maps depend
    only on the netlist and the plausible families, so one analysis serves
    every candidate query of an oracle; :meth:`refute` is then a handful of
    bitwise comparisons per candidate.
    """

    def __init__(
        self,
        netlist: Netlist,
        instance_plausible: Mapping[str, Sequence[TruthTable]],
    ):
        self._netlist = netlist
        num_inputs = len(netlist.primary_inputs)
        batch = PatternBatch.exhaustive(num_inputs)
        mask = self.mask = batch.mask
        can0: Dict[str, int] = {CONST0_NET: mask, CONST1_NET: 0}
        can1: Dict[str, int] = {CONST0_NET: 0, CONST1_NET: mask}
        for index, net in enumerate(netlist.primary_inputs):
            lane = batch.lane(index)
            can1[net] = lane
            can0[net] = lane ^ mask

        for instance in netlist.topological_order():
            functions = instance_plausible.get(instance.name)
            if functions is None:
                functions = [netlist.library[instance.cell].function]
            arity = len(instance.inputs)
            pin_can0 = [can0[net] for net in instance.inputs]
            pin_can1 = [can1[net] for net in instance.inputs]
            reach1 = 0
            reach0 = 0
            for function in functions:
                if function.num_vars != arity:
                    raise NetlistError(
                        f"plausible function of instance {instance.name!r} has "
                        f"{function.num_vars} variables but the instance has "
                        f"{arity} pins"
                    )
                # Achievable-1: some on-set row is pin-wise achievable.
                reach1 |= _achievable_rows(
                    function.bits, arity, pin_can0, pin_can1, mask
                )
                off = (
                    function.bits ^ mask_for(arity)
                    if arity
                    else (~function.bits) & 1
                )
                reach0 |= _achievable_rows(off, arity, pin_can0, pin_can1, mask)
                if reach0 == mask and reach1 == mask:
                    break
            can1[instance.output] = reach1
            can0[instance.output] = reach0

        self.output_can0: List[int] = []
        self.output_can1: List[int] = []
        for net in netlist.primary_outputs:
            if net not in can1:
                raise NetlistError(f"primary output {net!r} is undriven")
            self.output_can0.append(can0[net])
            self.output_can1.append(can1[net])

    def refute(self, candidate: BoolFunction) -> Optional[int]:
        """Word where the candidate needs an unachievable bit (None if none)."""
        mask = self.mask
        for index in range(len(self.output_can1)):
            required = candidate.output(index).bits
            violation = (required & (self.output_can1[index] ^ mask)) | (
                (required ^ mask) & (self.output_can0[index] ^ mask)
            )
            if violation:
                return (violation & -violation).bit_length() - 1
        return None


def possibility_refute(
    netlist: Netlist,
    instance_plausible: Mapping[str, Sequence[TruthTable]],
    candidate: BoolFunction,
) -> Optional[int]:
    """Sound one-shot refutation of a plausibility query (see the class).

    Callers with many candidates should build one :class:`PossibilityAnalysis`
    and call :meth:`~PossibilityAnalysis.refute` per candidate instead.
    """
    return PossibilityAnalysis(netlist, instance_plausible).refute(candidate)


def _achievable_rows(
    rows: int, arity: int, pin_can0: Sequence[int], pin_can1: Sequence[int], mask: int
) -> int:
    """Patterns where some listed row is achievable pin-by-pin."""
    if arity == 0:
        return mask if rows & 1 else 0
    result = 0
    remaining = rows & mask_for(arity)
    while remaining:
        low = remaining & -remaining
        row = low.bit_length() - 1
        remaining ^= low
        term = mask
        for var in range(arity):
            term &= pin_can1[var] if (row >> var) & 1 else pin_can0[var]
            if not term:
                break
        result |= term
        if result == mask:
            break
    return result



"""Pattern sources for word-parallel simulation.

A :class:`PatternBatch` holds a batch of input patterns in *transposed*
(bit-sliced) form: one packed Python-int lane per input, where bit ``p`` of
lane ``i`` is the value of input ``i`` under pattern ``p``.  This is the
layout the packed engines consume directly — a gate evaluation becomes a
handful of bitwise operations on ``num_patterns``-bit integers, regardless
of how many patterns are in flight.

Three sources cover the needs of the attack and verification flows:

* :meth:`PatternBatch.exhaustive` — all ``2**n`` minterms in truth-table
  order (lane ``i`` is the projection pattern of variable ``i``), so a lane
  over an exhaustive batch *is* a packed truth table;
* :class:`RandomPatternSource` — a seeded, deterministic stream of random
  batches for fuzzing;
* :class:`ReplayBuffer` — an ordered, bounded, deduplicated store of
  interesting words (DIPs, SAT counterexamples, witnesses) that persists
  across calls so later queries re-try the patterns that killed earlier
  candidates first.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from .._bitops import variable_pattern

__all__ = ["PatternBatch", "RandomPatternSource", "ReplayBuffer"]


class PatternBatch:
    """An immutable batch of input patterns in bit-sliced form."""

    __slots__ = ("_num_inputs", "_num_patterns", "_lanes")

    def __init__(self, num_inputs: int, num_patterns: int, lanes: Sequence[int]):
        if num_inputs < 0:
            raise ValueError("num_inputs must be non-negative")
        if num_patterns < 1:
            raise ValueError("a batch needs at least one pattern")
        if len(lanes) != num_inputs:
            raise ValueError("one lane per input is required")
        mask = (1 << num_patterns) - 1
        for lane in lanes:
            if lane < 0 or lane > mask:
                raise ValueError("lane does not fit the number of patterns")
        self._num_inputs = num_inputs
        self._num_patterns = num_patterns
        self._lanes = tuple(lanes)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_words(cls, num_inputs: int, words: Sequence[int]) -> "PatternBatch":
        """Build a batch from explicit input words (bit ``i`` = input ``i``)."""
        if not words:
            raise ValueError("a batch needs at least one pattern")
        limit = 1 << num_inputs
        lanes = [0] * num_inputs
        for position, word in enumerate(words):
            if not 0 <= word < limit:
                raise ValueError(f"word {word} out of range for {num_inputs} inputs")
            for index in range(num_inputs):
                if (word >> index) & 1:
                    lanes[index] |= 1 << position
        return cls(num_inputs, len(words), lanes)

    @classmethod
    def exhaustive(cls, num_inputs: int) -> "PatternBatch":
        """All ``2**num_inputs`` patterns in minterm (truth-table) order.

        A net lane simulated over this batch is exactly the packed truth
        table of that net over the primary inputs.
        """
        lanes = [variable_pattern(index, num_inputs) for index in range(num_inputs)]
        return cls(num_inputs, 1 << num_inputs, lanes)

    @classmethod
    def random(
        cls, num_inputs: int, count: int, rng: Optional[random.Random] = None, seed: int = 1
    ) -> "PatternBatch":
        """A batch of ``count`` random patterns (deterministic for a seed)."""
        rng = rng if rng is not None else random.Random(seed)
        if num_inputs == 0:
            # getrandbits(0) raises on some Python versions; the only word a
            # 0-input workload admits is the empty one.
            return cls(0, count, [])
        words = [rng.getrandbits(num_inputs) for _ in range(count)]
        return cls.from_words(num_inputs, words)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def num_inputs(self) -> int:
        """Number of inputs each pattern assigns."""
        return self._num_inputs

    @property
    def num_patterns(self) -> int:
        """Number of patterns in the batch (the lane width)."""
        return self._num_patterns

    @property
    def mask(self) -> int:
        """The all-ones lane (``num_patterns`` set bits)."""
        return (1 << self._num_patterns) - 1

    @property
    def lanes(self) -> Tuple[int, ...]:
        """The per-input lanes (bit ``p`` of lane ``i`` = input ``i`` in pattern ``p``)."""
        return self._lanes

    def lane(self, index: int) -> int:
        """Return the lane of input ``index``."""
        return self._lanes[index]

    def word_at(self, position: int) -> int:
        """Reconstruct the input word of pattern ``position``."""
        if not 0 <= position < self._num_patterns:
            raise ValueError(f"pattern index {position} out of range")
        word = 0
        for index, lane in enumerate(self._lanes):
            if (lane >> position) & 1:
                word |= 1 << index
        return word

    def words(self) -> List[int]:
        """Return every pattern as an input word, in batch order."""
        return [self.word_at(position) for position in range(self._num_patterns)]

    # ------------------------------------------------------------------ #
    # Sharding
    # ------------------------------------------------------------------ #
    def slice(self, start: int, count: int) -> "PatternBatch":
        """Return the sub-batch of ``count`` patterns starting at ``start``.

        Pattern ``p`` of the slice is pattern ``start + p`` of this batch, so
        slicing preserves batch order (shard-local indices map back to global
        ones by adding ``start``).
        """
        if start < 0 or count < 1 or start + count > self._num_patterns:
            raise ValueError(
                f"slice [{start}, {start + count}) out of range for "
                f"{self._num_patterns} patterns"
            )
        mask = (1 << count) - 1
        lanes = [(lane >> start) & mask for lane in self._lanes]
        return PatternBatch(self._num_inputs, count, lanes)

    def split(self, num_shards: int) -> List[Tuple[int, "PatternBatch"]]:
        """Split into at most ``num_shards`` contiguous shards.

        Returns ``(offset, shard)`` pairs in batch order; concatenating the
        shards reproduces the batch exactly.  The shard count is clamped to
        the number of patterns (a batch of ``p`` patterns yields at most
        ``p`` one-pattern shards), so callers may pass any worker count
        without tripping over small batches.
        """
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        num_shards = min(num_shards, self._num_patterns)
        base, extra = divmod(self._num_patterns, num_shards)
        shards: List[Tuple[int, PatternBatch]] = []
        start = 0
        for index in range(num_shards):
            count = base + (1 if index < extra else 0)
            shards.append((start, self.slice(start, count)))
            start += count
        return shards

    def __len__(self) -> int:
        return self._num_patterns

    def __repr__(self) -> str:
        return f"PatternBatch(inputs={self._num_inputs}, patterns={self._num_patterns})"


class RandomPatternSource:
    """A deterministic stream of random pattern batches.

    Batches drawn from the same seed in the same order are identical across
    runs and platforms, which keeps every fuzz-before-SAT path reproducible.
    """

    def __init__(self, seed: int = 1):
        self._seed = seed
        self._rng = random.Random(seed)
        self._drawn = 0

    @property
    def seed(self) -> int:
        """The seed this source was created with."""
        return self._seed

    @property
    def batches_drawn(self) -> int:
        """Number of batches handed out so far."""
        return self._drawn

    def batch(self, num_inputs: int, count: int) -> PatternBatch:
        """Draw the next batch of ``count`` random patterns."""
        self._drawn += 1
        return PatternBatch.random(num_inputs, count, rng=self._rng)

    def words(self, num_inputs: int, count: int, distinct: bool = False) -> List[int]:
        """Draw ``count`` random input words (optionally distinct).

        With ``distinct=True`` the result is capped at ``2**num_inputs``
        words (a full enumeration in random order at the cap).
        """
        self._drawn += 1
        space = 1 << num_inputs
        if num_inputs == 0:
            # The 0-input space has exactly one word (the empty one).
            return [0] if distinct else [0] * count
        if not distinct:
            return [self._rng.getrandbits(num_inputs) for _ in range(count)]
        count = min(count, space)
        if count * 4 >= space:
            return self._rng.sample(range(space), count)
        seen: List[int] = []
        seen_set = set()
        while len(seen) < count:
            word = self._rng.getrandbits(num_inputs)
            if word not in seen_set:
                seen_set.add(word)
                seen.append(word)
        return seen


class ReplayBuffer:
    """A bounded, ordered, deduplicated store of interesting input words.

    The attack and equivalence flows push every distinguishing input, SAT
    counterexample, or refuting fuzz pattern they encounter; later queries
    replay the stored words *first*, because a pattern that killed one
    candidate very often kills the next one too (the classic simulation
    front-end of SAT sweeping).
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self._capacity = capacity
        self._words: List[int] = []
        self._seen = set()

    def add(self, word: int) -> bool:
        """Record a word; returns True when it was new.

        At capacity the oldest word is evicted (FIFO), keeping the most
        recent counterexamples alive.
        """
        if word in self._seen:
            return False
        if len(self._words) >= self._capacity:
            evicted = self._words.pop(0)
            self._seen.discard(evicted)
        self._words.append(word)
        self._seen.add(word)
        return True

    def extend(self, words: Iterable[int]) -> None:
        """Record several words in order."""
        for word in words:
            self.add(word)

    def words(self, limit: Optional[int] = None) -> List[int]:
        """Stored words, most recent first (they refute best)."""
        recent_first = list(reversed(self._words))
        return recent_first if limit is None else recent_first[:limit]

    def batch(self, num_inputs: int, limit: Optional[int] = None) -> Optional[PatternBatch]:
        """Return the stored words as a batch (None when empty).

        Words that do not fit ``num_inputs`` bits are skipped, so one buffer
        can be shared between circuits of different widths.
        """
        space = 1 << num_inputs
        words = [word for word in self.words(limit) if 0 <= word < space]
        if not words:
            return None
        return PatternBatch.from_words(num_inputs, words)

    def __len__(self) -> int:
        return len(self._words)

    def __contains__(self, word: int) -> bool:
        return word in self._seen

    def __iter__(self) -> Iterator[int]:
        return iter(self._words)

    def __repr__(self) -> str:
        return f"ReplayBuffer(size={len(self._words)}, capacity={self._capacity})"

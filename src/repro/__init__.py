"""Reproduction of "Design Automation for Obfuscated Circuits with Multiple
Viable Functions" (Keshavarz, Paar, Holcomb -- DATE 2017).

The package is organised as a small EDA flow:

* :mod:`repro.logic`, :mod:`repro.netlist`, :mod:`repro.aig`, :mod:`repro.synth`
  -- the synthesis substrate (truth tables, netlists, AIG optimisation,
  technology mapping to a GE-weighted standard-cell library);
* :mod:`repro.camo` -- dopant-programmable camouflaged cells and their
  plausible-function families;
* :mod:`repro.merge`, :mod:`repro.ga` -- Phase I (multi-function merging) and
  Phase II (genetic-algorithm pin-assignment optimisation);
* :mod:`repro.techmap` -- Phase III (tree covering with camouflaged cells);
* :mod:`repro.sat`, :mod:`repro.attacks` -- the adversary model: a CDCL SAT
  solver and the viable-function plausibility tests;
* :mod:`repro.sim` -- packed word-parallel simulation (pattern batches,
  netlist/AIG engines, fuzz-before-SAT pre-filters, sharded multi-core
  batches);
* :mod:`repro.sboxes` -- the PRESENT, optimal 4-bit, DES, and AES-style
  S-box workloads;
* :mod:`repro.scenarios` -- the workload registry (pluggable families) and
  the resumable campaign runner;
* :mod:`repro.telemetry` -- the unified run-telemetry record every layer's
  counters flow into (and the strategy layers read back from);
* :mod:`repro.flow`, :mod:`repro.evaluation` -- the end-to-end obfuscation flow
  and the Table I / Figure 4 experiment harnesses.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]

from .flow.obfuscate import ObfuscationResult, obfuscate, obfuscate_with_assignment
from .ga.engine import GAParameters
from .logic.boolfunc import BoolFunction
from .logic.truthtable import TruthTable
from .merge.merged import MergedDesign, merge_functions
from .merge.pinassign import PinAssignment
from .netlist.library import standard_cell_library
from .camo.library import default_camouflage_library
from .sboxes.aes import aes_sboxes
from .sboxes.des import des_sboxes
from .sboxes.optimal4 import optimal_sboxes
from .sboxes.present import present_sbox
from .scenarios import CampaignSpec, build_workload, run_campaign
from .synth.script import synthesize
from .techmap.mapper import camouflage_map
from .telemetry import RunTelemetry

__all__ = [
    "__version__",
    "TruthTable",
    "BoolFunction",
    "PinAssignment",
    "MergedDesign",
    "merge_functions",
    "GAParameters",
    "standard_cell_library",
    "default_camouflage_library",
    "synthesize",
    "camouflage_map",
    "obfuscate",
    "obfuscate_with_assignment",
    "ObfuscationResult",
    "present_sbox",
    "optimal_sboxes",
    "des_sboxes",
    "aes_sboxes",
    "build_workload",
    "CampaignSpec",
    "run_campaign",
    "RunTelemetry",
]

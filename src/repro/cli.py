"""Command-line interface.

Examples
--------
Obfuscate four PRESENT-style S-boxes and write the camouflaged Verilog::

    python -m repro.cli obfuscate --family PRESENT --count 4 --verilog out.v

Reproduce Table I with the quick profile::

    python -m repro.cli table1 --profile quick

Reproduce Figure 4::

    python -m repro.cli figure4 --profile quick

Run the adversary analysis on a small obfuscated design::

    python -m repro.cli attack --count 2

Exercise and benchmark the word-parallel simulation engine::

    python -m repro.cli sim --family PRESENT --count 2 --patterns 4096

Run a resumable campaign over registered workloads (AES-style 8-bit S-boxes
here; rerunning with the same ``--state-dir`` skips completed jobs)::

    python -m repro.cli campaign --workload AES:2 --population 4 \\
        --generations 1 --jobs 2 --state-dir /tmp/aes-campaign --csv out.csv

The experiment commands accept ``--jobs N`` to spread synthesis work over N
worker processes (default: the ``REPRO_JOBS`` environment variable, else
serial).  Seeded results are identical for every ``--jobs`` value.  The
fuzz-before-SAT paths (packed random simulation kills most candidates
before a solver call) are on by default; ``REPRO_FUZZ=0`` opts out.
Verdicts are unchanged either way, only slower without them — except the
oracle-guided attack, whose presampling trades a different query transcript
for far fewer SAT calls.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from .attacks.decamouflage import PlausibleFunctionOracle
from .evaluation.figure4 import run_figure4a, run_figure4b
from .evaluation.table1 import run_table1, table1_text
from .evaluation.workloads import (
    DES_FAMILY,
    PRESENT_FAMILY,
    get_profile,
    workload_functions,
)
from .flow.obfuscate import obfuscate
from .flow.report import (
    AreaRow,
    CacheStatsRow,
    SolverStatsRow,
    format_cache_stats,
    format_solver_stats,
    format_table,
)
from .ga.engine import GAParameters
from .parallel import resolve_jobs
from .netlist.verilog import write_verilog
from .netlist.blif import write_blif
from .netlist.window import WINDOWING_NAMES
from .synth.area import area_report
from .synth.script import SCHEDULER_NAMES

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Design automation for obfuscated circuits with multiple viable "
            "functions (DATE 2017 reproduction)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    obfuscate_parser = subparsers.add_parser(
        "obfuscate",
        help="run the three-phase flow on an S-box workload or a BLIF netlist",
        description=(
            "Without --blif-in: the classic flow over an S-box workload "
            "(exact viable functions).  With --blif-in: the windowed "
            "netlist flow — the circuit is decomposed into bounded-input "
            "windows, every window is obfuscated through the full Phase "
            "I-III pipeline (its exact function plus seeded decoy viable "
            "functions), and the camouflaged windows are stitched back "
            "together, so circuits with dozens of primary inputs never "
            "build a whole-circuit truth table."
        ),
    )
    obfuscate_parser.add_argument(
        "--family", choices=[PRESENT_FAMILY, DES_FAMILY], default=PRESENT_FAMILY
    )
    obfuscate_parser.add_argument("--count", type=int, default=2,
                                  help="number of viable S-boxes to merge")
    obfuscate_parser.add_argument("--population", type=int, default=8)
    obfuscate_parser.add_argument("--generations", type=int, default=6)
    obfuscate_parser.add_argument("--seed", type=int, default=1)
    obfuscate_parser.add_argument("--verilog", type=str, default="",
                                  help="write the camouflaged netlist to this Verilog file")
    obfuscate_parser.add_argument("--blif", type=str, default="",
                                  help="write the camouflaged netlist to this BLIF file")
    obfuscate_parser.add_argument("--report", action="store_true",
                                  help="print the per-cell area report")
    obfuscate_parser.add_argument("--jobs", type=int, default=0,
                                  help="worker processes for fitness evaluation "
                                       "(0 = REPRO_JOBS env var, else serial)")
    obfuscate_parser.add_argument("--blif-in", type=str, default="",
                                  help="obfuscate this BLIF netlist through the "
                                       "windowed pipeline instead of an S-box workload")
    obfuscate_parser.add_argument("--max-window-inputs", type=int, default=8,
                                  help="boundary-input bound per window (windowed mode)")
    obfuscate_parser.add_argument("--decoys", type=int, default=1,
                                  help="decoy viable functions per window (windowed mode)")
    obfuscate_parser.add_argument("--attack", action="store_true",
                                  help="run the oracle-guided attack on the stitched "
                                       "netlist after obfuscating (windowed mode)")
    obfuscate_parser.add_argument("--attack-queries", type=int, default=64,
                                  help="DIP budget of the --attack run")
    obfuscate_parser.add_argument("--presample", type=int, default=-1,
                                  help="random oracle observations before the DIP loop "
                                       "(-1 = fuzz default)")
    obfuscate_parser.add_argument("--sat-check", action="store_true",
                                  help="force the whole-netlist SAT equivalence check "
                                       "even beyond the default width limit")
    obfuscate_parser.add_argument("--scheduler", choices=list(SCHEDULER_NAMES),
                                  default="",
                                  help="synthesis pass scheduler (default: the "
                                       "REPRO_SCHEDULER env var, else 'fixed')")
    obfuscate_parser.add_argument("--windowing", choices=list(WINDOWING_NAMES),
                                  default="",
                                  help="window partition strategy (windowed mode; "
                                       "default: the REPRO_WINDOWING env var, "
                                       "else 'greedy')")

    table_parser = subparsers.add_parser("table1", help="reproduce Table I")
    table_parser.add_argument("--profile", type=str, default="",
                              help="experiment profile (quick, medium, paper)")
    table_parser.add_argument("--seed", type=int, default=1)
    table_parser.add_argument("--jobs", type=int, default=0,
                              help="worker processes for the sweep "
                                   "(0 = REPRO_JOBS env var, else serial)")

    figure_parser = subparsers.add_parser("figure4", help="reproduce Figure 4a/4b")
    figure_parser.add_argument("--profile", type=str, default="")
    figure_parser.add_argument("--seed", type=int, default=11)
    figure_parser.add_argument("--jobs", type=int, default=0,
                               help="worker processes for the sweeps "
                                    "(0 = REPRO_JOBS env var, else serial)")

    attack_parser = subparsers.add_parser(
        "attack", help="run the adversary's plausibility analysis on a small design"
    )
    attack_parser.add_argument("--count", type=int, default=2)
    attack_parser.add_argument("--family", choices=[PRESENT_FAMILY, DES_FAMILY],
                               default=PRESENT_FAMILY)
    attack_parser.add_argument("--population", type=int, default=6)
    attack_parser.add_argument("--generations", type=int, default=3)

    sim_parser = subparsers.add_parser(
        "sim",
        help="exercise the word-parallel simulation engine (cross-check + throughput)",
        description=(
            "Synthesise an S-box workload and drive it through the packed "
            "word-parallel simulator (repro.sim): every net carries one "
            "Python-int lane over the whole pattern batch.  The run "
            "cross-checks the packed engine against row-by-row simulation "
            "and against exhaustive extraction, then reports the measured "
            "throughput of both, which is the speedup the (default-on) "
            "fuzz-before-SAT pre-filters build on."
        ),
    )
    sim_parser.add_argument("--family", choices=[PRESENT_FAMILY, DES_FAMILY],
                            default=PRESENT_FAMILY)
    sim_parser.add_argument("--count", type=int, default=2,
                            help="number of S-boxes to synthesise and simulate")
    sim_parser.add_argument("--patterns", type=int, default=4096,
                            help="random patterns per packed batch")
    sim_parser.add_argument("--seed", type=int, default=7)

    campaign_parser = subparsers.add_parser(
        "campaign",
        help="run a declarative experiment campaign (resumable, multi-workload)",
        description=(
            "Express a Table-I-style sweep over any registered workload "
            "family (PRESENT, DES, AES, RANDOM, ...) as a campaign of jobs, "
            "executed over worker processes with resumable on-disk state: "
            "rerunning with the same --state-dir skips every job that "
            "already completed.  Results are written as JSON/CSV artifacts "
            "compatible with benchmarks/bench_diff.py."
        ),
    )
    campaign_parser.add_argument(
        "--workload", action="append", default=[], metavar="FAMILY:COUNT",
        help="workload configuration to sweep, e.g. AES:2 (repeatable; "
             "default: the profile's PRESENT/DES sweep)")
    campaign_parser.add_argument("--name", type=str, default="cli",
                                 help="campaign name (used in artifact file names)")
    campaign_parser.add_argument("--profile", type=str, default="",
                                 help="experiment profile (quick, medium, paper)")
    campaign_parser.add_argument("--seed", type=int, default=1)
    campaign_parser.add_argument("--population", type=int, default=0,
                                 help="override the profile's GA population")
    campaign_parser.add_argument("--generations", type=int, default=0,
                                 help="override the profile's GA generations")
    campaign_parser.add_argument("--with-attack", action="store_true",
                                 help="add an oracle-guided attack job per workload")
    campaign_parser.add_argument("--with-decamouflage", action="store_true",
                                 help="add a CEGAR decamouflage-hardness job per workload")
    campaign_parser.add_argument("--with-random-camo", action="store_true",
                                 help="add a random-camouflage baseline job per workload")
    campaign_parser.add_argument("--blif", type=str, default="",
                                 help="run the windowed obfuscation of this BLIF circuit "
                                      "as the campaign (one resumable job per window)")
    campaign_parser.add_argument("--max-window-inputs", type=int, default=8,
                                 help="boundary-input bound per window (--blif mode)")
    campaign_parser.add_argument("--decoys", type=int, default=1,
                                 help="decoy viable functions per window (--blif mode)")
    campaign_parser.add_argument("--no-verify", action="store_true",
                                 help="skip the per-row realisability verification")
    campaign_parser.add_argument("--jobs", type=int, default=0,
                                 help="worker processes (0 = REPRO_JOBS env var, else serial)")
    campaign_parser.add_argument("--state-dir", type=str, default="",
                                 help="directory for resumable per-job state files")
    campaign_parser.add_argument("--limit", type=int, default=-1,
                                 help="run at most N pending jobs (cached jobs are free; "
                                      "-1 = no limit)")
    campaign_parser.add_argument("--json", type=str, default="",
                                 help="write the full campaign result to this JSON file")
    campaign_parser.add_argument("--csv", type=str, default="",
                                 help="write the per-job result table to this CSV file")
    campaign_parser.add_argument("--bench-dir", type=str, default="",
                                 help="emit a BENCH_campaign_<name>.json into this directory")
    campaign_parser.add_argument("--list-workloads", action="store_true",
                                 help="list the registered workload families and exit")
    campaign_parser.add_argument("--scheduler", choices=list(SCHEDULER_NAMES),
                                 default="",
                                 help="synthesis pass scheduler for window jobs "
                                      "(--blif mode)")
    campaign_parser.add_argument("--windowing", choices=list(WINDOWING_NAMES),
                                 default="",
                                 help="window partition strategy (--blif mode)")
    campaign_parser.add_argument("--probe-hardness", action="store_true",
                                 help="probe each finished window with a bounded "
                                      "oracle-guided attack and record its work "
                                      "counters in the job telemetry (--blif mode)")
    campaign_parser.add_argument("--lease-ttl", type=float, default=0.0,
                                 help="job-lease time-to-live in seconds for shared "
                                      "--state-dir campaigns (default REPRO_LEASE_TTL "
                                      "or 60; heartbeats refresh every TTL/3)")
    campaign_parser.add_argument("--retries", type=int, default=0,
                                 help="max attempts per job on transient failures "
                                      "(default REPRO_RETRY_ATTEMPTS or 3)")
    campaign_parser.add_argument("--solve-budget", type=str, default="",
                                 help="per-solve-call budget spec, e.g. "
                                      "'conflicts=20000,seconds=2.5' (default "
                                      "REPRO_SOLVE_BUDGET); doubled on every retry, "
                                      "jobs still over budget finish as timed_out")
    campaign_parser.add_argument("--submit", type=str, default="",
                                 metavar="URL",
                                 help="submit the campaign to a coordinator "
                                      "(repro serve) instead of running locally; "
                                      "streams progress and fetches the artifacts "
                                      "(default URL: REPRO_SERVICE_URL)")
    campaign_parser.add_argument("--no-wait", action="store_true",
                                 help="with --submit: return after submission "
                                      "without waiting for completion")

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the campaign coordinator (HTTP service for pull-based workers)",
        description=(
            "Serve campaigns over HTTP: accept CampaignSpec submissions "
            "(POST /campaigns, deduplicated by content fingerprint), "
            "arbitrate job leases for pull-based worker agents "
            "(python -m repro.service.worker), stream per-job progress as "
            "server-sent events, render JSON/CSV/BENCH artifacts, and host "
            "the fleet-shared synthesis cache (GET/PUT /cache/<fp>)."
        ),
    )
    serve_parser.add_argument("--host", type=str, default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8765)
    serve_parser.add_argument("--root", type=str, default="",
                              help="service state root (default REPRO_SERVICE_ROOT)")
    serve_parser.add_argument("--lease-ttl", type=float, default=0.0,
                              help="job-lease time-to-live in seconds "
                                   "(default REPRO_LEASE_TTL or 60)")
    serve_parser.add_argument("--poll", type=float, default=0.0,
                              help="SSE/claim poll interval in seconds "
                                   "(default REPRO_SERVICE_POLL or 0.25)")

    cache_parser = subparsers.add_parser(
        "cache",
        help="maintain the persistent synthesis cache",
        description=(
            "Maintenance for the REPRO_CACHE_DIR synthesis cache.  "
            "'compact' merges the per-process segment files that "
            "interleave-safe appends accumulate into one deduplicated "
            "segment (safe alongside live writers: they only append to "
            "their own segments)."
        ),
    )
    cache_parser.add_argument("action", choices=["compact"],
                              help="maintenance action to run")
    cache_parser.add_argument("--dir", type=str, default="",
                              help="cache directory (default REPRO_CACHE_DIR)")

    doctor_parser = subparsers.add_parser(
        "doctor",
        help="report the active compute backend (pure vs native) and why",
        description=(
            "Diagnose the backend dispatch: which backend REPRO_BACKEND "
            "requests, whether the compiled extension (repro._native._core) "
            "imports, which backend new solvers/simulators will actually "
            "use, and — when the native core is unavailable — the import "
            "error and the build command that fixes it.  --check runs a "
            "quick pure-vs-native differential cross-check on top."
        ),
    )
    doctor_parser.add_argument("--json", action="store_true",
                               help="emit the report as JSON")
    doctor_parser.add_argument("--check", action="store_true",
                               help="run a quick pure-vs-native differential "
                                    "cross-check (needs the extension built)")

    trace_parser = subparsers.add_parser(
        "trace",
        help="inspect a recorded trace (runs made with REPRO_TRACE=1)",
        description=(
            "Render the JSONL trace segments a REPRO_TRACE=1 run appended "
            "under REPRO_TRACE_DIR: the span tree with durations (one "
            "stitched tree per campaign, local or distributed), a per-name "
            "rollup of where the time went, the critical path through the "
            "longest chain of spans, or a standalone SVG timeline."
        ),
    )
    trace_parser.add_argument(
        "view",
        choices=["tree", "rollup", "critical-path", "timeline"],
        nargs="?",
        default="tree",
        help="which rendering to produce (default: tree)",
    )
    trace_parser.add_argument("--dir", type=str, default="",
                              help="trace directory (default REPRO_TRACE_DIR, "
                                   "else ./repro-trace)")
    trace_parser.add_argument("--svg", type=str, default="",
                              help="output path of the timeline SVG "
                                   "(timeline view; default trace_timeline.svg)")
    trace_parser.add_argument("--title", type=str, default="",
                              help="timeline title (default: trace timeline)")
    return parser


def _command_obfuscate(args: argparse.Namespace) -> int:
    if args.blif_in:
        return _command_obfuscate_windowed(args)
    functions = workload_functions(args.family, args.count)
    parameters = GAParameters(
        population_size=args.population, generations=args.generations, seed=args.seed
    )
    result = obfuscate(
        functions,
        ga_parameters=parameters,
        jobs=resolve_jobs(args.jobs or None),
        scheduler=args.scheduler or None,
    )
    print(result.summary())
    if args.report:
        print()
        print(area_report(result.netlist).to_text())
    if args.verilog:
        with open(args.verilog, "w", encoding="utf-8") as handle:
            handle.write(write_verilog(result.netlist))
        print(f"wrote {args.verilog}")
    if args.blif:
        with open(args.blif, "w", encoding="utf-8") as handle:
            handle.write(write_blif(result.netlist))
        print(f"wrote {args.blif}")
    return 0 if result.verification.all_realisable else 1


def _command_obfuscate_windowed(args: argparse.Namespace) -> int:
    """Windowed mode of the ``obfuscate`` command (BLIF in, stitched out)."""
    from .attacks.oracle_guided import attack_windowed
    from .flow.target import obfuscate_netlist
    from .ga.engine import GAParameters
    from .netlist.blif import read_blif
    from .netlist.library import standard_cell_library

    with open(args.blif_in, "r", encoding="utf-8") as handle:
        netlist = read_blif(handle.read(), standard_cell_library())
    print(
        f"windowed obfuscation of {netlist.name!r}: "
        f"{len(netlist.primary_inputs)} inputs, {netlist.num_instances()} cells"
    )
    parameters = GAParameters(
        population_size=args.population, generations=args.generations, seed=args.seed
    )
    result = obfuscate_netlist(
        netlist,
        max_window_inputs=args.max_window_inputs,
        decoys_per_window=args.decoys,
        ga_parameters=parameters,
        seed=args.seed,
        sat_check=True if args.sat_check else None,
        jobs=resolve_jobs(args.jobs or None),
        progress=print,
        windowing=args.windowing or None,
        scheduler=args.scheduler or None,
    )
    print()
    print(result.summary())
    if args.verilog:
        with open(args.verilog, "w", encoding="utf-8") as handle:
            handle.write(write_verilog(result.netlist))
        print(f"wrote {args.verilog}")
    if args.blif:
        with open(args.blif, "w", encoding="utf-8") as handle:
            handle.write(write_blif(result.netlist))
        print(f"wrote {args.blif}")
    ok = result.verification.ok
    if args.attack:
        print()
        presample = None if args.presample < 0 else args.presample
        outcome = attack_windowed(
            result, max_queries=args.attack_queries, presample=presample
        )
        print(
            f"oracle-guided attack: success={outcome.success} "
            f"dips={outcome.num_queries} "
            f"oracle queries={outcome.total_oracle_queries} "
            f"(budget {args.attack_queries} DIPs)"
        )
        print(
            format_solver_stats(
                [SolverStatsRow.from_stats("windowed attack", outcome.solver_stats)],
                title="incremental solver work:",
            )
        )
    return 0 if ok else 1


def _command_table1(args: argparse.Namespace) -> int:
    profile = get_profile(args.profile)
    jobs = resolve_jobs(args.jobs or None)
    entries = run_table1(profile=profile, seed=args.seed, progress=print, jobs=jobs)
    print()
    print(table1_text(entries, profile_name=profile.name))
    # Mirror run_table1's budget split: in a parallel sweep each row runs
    # with the leftover per-row worker budget, not the outer --jobs value.
    row_jobs = max(1, jobs // len(entries)) if jobs > 1 and len(entries) > 1 else jobs
    cache_rows = [
        CacheStatsRow.from_stats(
            f"{entry.row.circuit} x{entry.row.num_functions}",
            entry.obfuscation.pin_optimization.cache_stats,
            jobs=row_jobs,
        )
        for entry in entries
        if entry.obfuscation.pin_optimization is not None
    ]
    if cache_rows:
        print()
        print(format_cache_stats(cache_rows, title="fitness-cache work (GA, parent process):"))
    ok = all(entry.verification_ok for entry in entries)
    print()
    print("validation:", "all viable functions realisable" if ok else "FAILURES present")
    return 0 if ok else 1


def _command_figure4(args: argparse.Namespace) -> int:
    profile = get_profile(args.profile)
    jobs = resolve_jobs(args.jobs or None)
    data_a = run_figure4a(profile=profile, seed=args.seed, jobs=jobs)
    print(data_a.to_text())
    print()
    data_b = run_figure4b(profile=profile, seed=args.seed, jobs=jobs)
    print(data_b.to_text())
    return 0


def _command_attack(args: argparse.Namespace) -> int:
    functions = workload_functions(args.family, args.count)
    parameters = GAParameters(
        population_size=args.population, generations=args.generations, seed=1
    )
    result = obfuscate(functions, ga_parameters=parameters)
    print(result.summary())
    print()
    oracle = PlausibleFunctionOracle.from_mapping(result.mapping)
    views = result.assignment.apply(list(functions))
    print("adversary plausibility checks (viable functions, designer's pin view):")
    all_plausible = True
    for function, view in zip(functions, views):
        outcome = oracle.is_plausible(view)
        all_plausible &= bool(outcome)
        print(f"  {function.name:<12} plausible={bool(outcome)} conflicts={outcome.conflicts}")
    print()
    print(
        format_solver_stats(
            [SolverStatsRow.from_stats("plausibility oracle", oracle.solver_stats())],
            title="incremental solver work:",
        )
    )
    return 0 if all_plausible else 1


def _command_sim(args: argparse.Namespace) -> int:
    import time

    from .netlist.simulate import simulate_assignment
    from .sim import AigSimulator, NetlistSimulator, PatternBatch
    from .synth.script import synthesize

    functions = workload_functions(args.family, args.count)
    all_consistent = True
    print(f"word-parallel simulation check ({args.family} x{args.count}, "
          f"{args.patterns} patterns, seed {args.seed}):")
    for function in functions:
        result = synthesize(function, effort="fast")
        netlist = result.netlist
        simulator = NetlistSimulator(netlist)
        batch = PatternBatch.random(
            len(netlist.primary_inputs), args.patterns, seed=args.seed
        )

        start = time.perf_counter()
        lanes = simulator.output_lanes(batch)
        packed_seconds = time.perf_counter() - start

        # Row-by-row reference on a bounded sample of the same patterns.
        sample = min(batch.num_patterns, 64)
        start = time.perf_counter()
        consistent = True
        for position in range(sample):
            word = batch.word_at(position)
            assignment = {
                net: (word >> index) & 1
                for index, net in enumerate(netlist.primary_inputs)
            }
            values = simulate_assignment(netlist, assignment)
            for out_index, net in enumerate(netlist.primary_outputs):
                if values[net] != (lanes[out_index] >> position) & 1:
                    consistent = False
        rowwise_seconds = time.perf_counter() - start

        extracted = simulator.extract_function()
        consistent &= extracted.lookup_table() == function.lookup_table()
        sample_words = batch.words()[:sample]
        aig_words = AigSimulator(result.aig).simulate_words(sample_words)
        consistent &= aig_words == simulator.simulate_words(sample_words)
        all_consistent &= consistent

        packed_rate = batch.num_patterns / packed_seconds if packed_seconds else 0.0
        row_rate = sample / rowwise_seconds if rowwise_seconds else 0.0
        print(
            f"  {function.name:<12} {netlist.num_instances():>3} cells  "
            f"packed {packed_rate:>12.0f} patt/s  row-by-row {row_rate:>9.0f} patt/s  "
            f"consistent={consistent}"
        )
    print()
    print("cross-checks:", "OK" if all_consistent else "FAILED")
    return 0 if all_consistent else 1


def _parse_workload_selector(selector: str) -> tuple:
    """Parse a ``FAMILY:COUNT`` CLI selector."""
    family, _, count_text = selector.partition(":")
    if not family or not count_text:
        raise SystemExit(
            f"invalid workload selector {selector!r}; expected FAMILY:COUNT (e.g. AES:2)"
        )
    try:
        count = int(count_text)
    except ValueError:
        raise SystemExit(f"invalid workload count in {selector!r}") from None
    return family.upper(), count


def _campaign_robustness_kwargs(args: argparse.Namespace) -> dict:
    """Runner kwargs from the --lease-ttl/--retries/--solve-budget flags."""
    import dataclasses

    from .jobstore import RetryPolicy
    from .sat.solver import SolveBudget

    kwargs = {}
    if args.lease_ttl > 0:
        kwargs["lease_ttl"] = args.lease_ttl
    if args.retries > 0:
        kwargs["retry_policy"] = dataclasses.replace(
            RetryPolicy.from_environment(), max_attempts=args.retries
        )
    if args.solve_budget:
        try:
            kwargs["solve_budget"] = SolveBudget.from_spec(args.solve_budget)
        except ValueError as exc:
            raise SystemExit(f"invalid --solve-budget: {exc}") from exc
    return kwargs


def _print_robustness(outcome) -> None:
    """One line of retry/lease/crash counters when anything happened."""
    if outcome.robustness:
        counters = ", ".join(
            f"{key}={value:g}" for key, value in sorted(outcome.robustness.items())
        )
        print(f"robustness: {counters}")


def _command_campaign(args: argparse.Namespace) -> int:
    import dataclasses

    from .evaluation.workloads import get_profile as get_workload_profile
    from .scenarios import (
        CampaignError,
        CampaignRunner,
        CampaignSpec,
        WorkloadError,
        available_families,
        get_family,
    )

    if args.list_workloads:
        print("registered workload families:")
        for name in available_families():
            print(f"  {name:<10} {get_family(name).description}")
        return 0

    if args.blif:
        if args.submit:
            # Window jobs re-read the BLIF source by path; remote workers
            # have no shared filesystem to find it on.
            raise SystemExit("--submit does not support --blif campaigns")
        return _command_campaign_windowed(args)

    profile = get_workload_profile(args.profile)
    overrides = {}
    if args.population > 0:
        overrides["ga_population"] = args.population
    if args.generations > 0:
        overrides["ga_generations"] = args.generations
    if overrides:
        profile = dataclasses.replace(profile, **overrides)

    if args.workload:
        families = [_parse_workload_selector(selector) for selector in args.workload]
        # Validate selectors up front: a typo'd family or impossible count
        # should be an argument error, not N buried per-job failures.
        for family, count in families:
            try:
                get_family(family).check_count(count)
            except WorkloadError as exc:
                raise SystemExit(str(exc)) from exc
    else:
        families = [(PRESENT_FAMILY, count) for count in profile.present_counts]
        families += [(DES_FAMILY, count) for count in profile.des_counts]

    try:
        spec = CampaignSpec.table1(
            profile, families, seed=args.seed, verify=not args.no_verify, name=args.name
        )
        if args.with_attack:
            spec = spec.merged(
                CampaignSpec.attacks(
                    families,
                    population=profile.ga_population,
                    generations=profile.ga_generations,
                    seed=args.seed,
                ),
                name=args.name,
            )
        if args.with_decamouflage or args.with_random_camo:
            spec = spec.merged(
                CampaignSpec.adversary(
                    families,
                    population=profile.ga_population,
                    generations=profile.ga_generations,
                    seed=args.seed,
                    decamouflage=args.with_decamouflage,
                    random_camo=args.with_random_camo,
                ),
                name=args.name,
            )
    except CampaignError as exc:
        # e.g. the same --workload selector given twice: a clean CLI error,
        # not a traceback.
        raise SystemExit(f"invalid campaign: {exc}") from exc

    if args.submit:
        return _submit_campaign(args, spec)

    from .obs.log import get_logger

    runner = CampaignRunner(
        spec,
        state_dir=args.state_dir or None,
        jobs=resolve_jobs(args.jobs or None),
        progress=get_logger("campaign"),
        **_campaign_robustness_kwargs(args),
    )
    outcome = runner.run(limit=args.limit if args.limit >= 0 else None)

    print()
    print(f"campaign {outcome.name}: {len(outcome.completed)}/{len(outcome.results)} "
          f"jobs complete ({len(outcome.cached)} cached, {len(outcome.failed)} failed, "
          f"{len(outcome.pending)} pending) in {outcome.total_seconds:.1f}s")
    _print_robustness(outcome)

    rows = []
    for result in outcome.results:
        if result.kind != "table1_row" or not result.ok:
            continue
        if result.value is not None:
            rows.append(result.value.row)
        elif "row" in result.payload:
            # Cached jobs carry no rich value; rebuild the row from the
            # persisted payload so resumed campaigns render complete tables.
            rows.append(AreaRow.from_dict(result.payload["row"]))
    if rows:
        print()
        print(format_table(rows, title=f"Campaign area rows (profile: {profile.name})"))
    for result in outcome.results:
        if result.kind == "attack" and result.ok:
            queries = result.payload.get("total_oracle_queries", "?")
            print(f"attack {result.job_id}: success={result.payload.get('success')} "
                  f"oracle queries={queries}")
        elif result.kind == "decamouflage" and result.ok:
            print(f"decamouflage {result.job_id}: "
                  f"{result.payload.get('plausible')}/{result.payload.get('total')} "
                  f"viable functions plausible "
                  f"(CEGAR rounds={result.payload.get('prefilter', {}).get('cegar_rounds')})")
        elif result.kind == "random_camo" and result.ok:
            print(f"random-camo {result.job_id}: "
                  f"{result.payload.get('num_plausible')}/{result.payload.get('total')} "
                  f"candidates plausible at fraction "
                  f"{result.payload.get('fraction')}")

    written = outcome.write_artifacts(
        json_path=args.json or None,
        csv_path=args.csv or None,
        bench_dir=args.bench_dir or None,
    )
    for path in written:
        print(f"wrote {path}")
    return 1 if outcome.failed else 0


def _submit_campaign(args: argparse.Namespace, spec) -> int:
    """``campaign --submit URL``: run the spec through a coordinator."""
    from .obs.log import get_logger
    from .obs.trace import span as trace_span
    from .service.client import ServiceClient
    from .service.protocol import ServiceError

    log = get_logger("campaign")
    # The client span is the trace root of a distributed run: its context
    # rides the submit request's traceparent header, the coordinator parents
    # the campaign span under it, and every worker attempt stitches in.
    with trace_span("client", campaign=spec.name) as client_span:
        try:
            client = ServiceClient(args.submit)
            submitted = client.submit(spec.to_dict())
        except ServiceError as exc:
            raise SystemExit(f"submit failed: {exc.message}") from exc
        campaign_id = submitted["campaign"]
        client_span.annotate(campaign_id=campaign_id)
        log(
            f"campaign {campaign_id}: "
            f"{'created' if submitted.get('created') else 'already submitted'} "
            f"({submitted.get('jobs')} jobs) on {client.base_url}",
            campaign=campaign_id,
            created=bool(submitted.get("created")),
            jobs=submitted.get("jobs"),
        )
        if args.no_wait:
            return 0
        try:
            status = client.wait(campaign_id, progress=log)
        except ServiceError as exc:
            raise SystemExit(f"wait failed: {exc.message}") from exc
    counts = status.get("counts", {})
    failed = counts.get("error", 0) + counts.get("timed_out", 0)
    print()
    print(
        f"campaign {status.get('name', campaign_id)}: "
        f"{counts.get('done', 0)}/{status.get('jobs', 0)} jobs complete "
        f"({failed} failed)"
    )
    robustness = status.get("robustness", {})
    if robustness:
        print(
            "robustness: "
            + ", ".join(
                f"{key}={value:g}" for key, value in sorted(robustness.items())
            )
        )
    fetches = []
    if args.json:
        fetches.append(("json", args.json))
    if args.csv:
        fetches.append(("csv", args.csv))
    if args.bench_dir:
        os.makedirs(args.bench_dir, exist_ok=True)
        fetches.append(
            (
                "bench",
                os.path.join(args.bench_dir, f"BENCH_campaign_{spec.name}.json"),
            )
        )
    for kind, path in fetches:
        try:
            text = client.artifact(campaign_id, kind)
        except ServiceError as exc:
            raise SystemExit(f"artifact fetch failed: {exc.message}") from exc
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {path}")
    return 1 if failed else 0


def _command_serve(args: argparse.Namespace) -> int:
    from .service.protocol import ServiceError
    from .service.server import CampaignService

    try:
        service = CampaignService(
            root=args.root or None,
            lease_ttl=args.lease_ttl or None,
            poll=args.poll or None,
        )
    except ServiceError as exc:
        raise SystemExit(exc.message) from exc
    try:
        service.run(host=args.host, port=args.port)
    except KeyboardInterrupt:
        pass
    return 0


def _command_doctor(args: argparse.Namespace) -> int:
    import json as json_module

    from . import backend as backend_module

    report = backend_module.backend_report()
    check_result = None
    if args.check:
        check_result = _doctor_check(report)
        report = dict(report, check=check_result)

    if args.json:
        print(json_module.dumps(report, indent=2, sort_keys=True))
    else:
        env_value = os.environ.get(backend_module.BACKEND_ENV_VAR, "")
        print("backend doctor:")
        print(f"  requested:        {report['requested']}"
              + (f"  ({backend_module.BACKEND_ENV_VAR}={env_value!r})"
                 if env_value else "  (default)"))
        print(f"  native available: {report['native_available']}")
        if report["native_module"]:
            print(f"  native module:    {report['native_module']}")
        print(f"  active:           {report['active']}")
        if report["fallback_reason"]:
            print(f"  fallback reason:  {report['fallback_reason']}")
        if not report["native_available"]:
            print("  build with:       python setup.py build_ext --inplace")
        if check_result is not None:
            status = check_result["status"]
            detail = check_result.get("detail", "")
            print(f"  cross-check:      {status}" + (f"  ({detail})" if detail else ""))

    if report["active"] == "unavailable":
        return 1
    if check_result is not None and check_result["status"] == "FAILED":
        return 1
    return 0


def _doctor_check(report: dict) -> dict:
    """Quick differential cross-check for ``repro doctor --check``."""
    if not report["native_available"]:
        return {"status": "skipped", "detail": "native extension not built"}

    from .sat.generate import generate_pair
    from .sat.solver import SatSolver

    pair = generate_pair(24, seed=1)
    for clauses in (pair.unsat_clauses, pair.sat_clauses):
        pure = SatSolver(backend="pure")
        native = SatSolver(backend="native")
        for clause in clauses:
            pure.add_clause(clause)
            native.add_clause(clause)
        result_pure = pure.solve()
        result_native = native.solve()
        if (result_pure.status, result_pure.model) != (
            result_native.status,
            result_native.model,
        ):
            return {"status": "FAILED", "detail": "solver verdict/model mismatch"}
        if pure.stats() != native.stats():
            return {"status": "FAILED", "detail": "solver stats transcript mismatch"}

    from .netlist.generate import random_netlist
    from .netlist.library import standard_cell_library
    from .sim import NetlistSimulator, PatternBatch

    netlist = random_netlist(7, standard_cell_library(), num_inputs=6, num_cells=24)
    batch = PatternBatch.random(6, 256, seed=3)
    pure_sim = NetlistSimulator(netlist, backend="pure")
    native_sim = NetlistSimulator(netlist, backend="native")
    if pure_sim.net_lanes(batch) != native_sim.net_lanes(batch):
        return {"status": "FAILED", "detail": "simulator lane mismatch"}
    return {"status": "OK", "detail": "solver + simulator transcripts identical"}


def _command_trace(args: argparse.Namespace) -> int:
    from .obs.render import (
        render_critical_path,
        render_rollup,
        render_timeline,
        render_tree,
    )
    from .obs.trace import load_trace, trace_dir

    directory = args.dir or trace_dir()
    records = load_trace(directory)
    if not records:
        raise SystemExit(
            f"no trace records under {directory!r} "
            f"(run with REPRO_TRACE=1 and REPRO_TRACE_DIR={directory} first)"
        )
    if args.view == "tree":
        print(render_tree(records))
    elif args.view == "rollup":
        print(render_rollup(records))
    elif args.view == "critical-path":
        print(render_critical_path(records))
    else:
        path = args.svg or "trace_timeline.svg"
        svg = render_timeline(records, title=args.title or "trace timeline")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(svg)
        print(f"wrote {path} ({len(records)} records)")
    return 0


def _command_cache(args: argparse.Namespace) -> int:
    from .ga.pinopt import CACHE_DIR_ENV_VAR, compact_cache_dir

    directory = args.dir or os.environ.get(CACHE_DIR_ENV_VAR, "").strip()
    if not directory:
        raise SystemExit("no cache directory (pass --dir or set REPRO_CACHE_DIR)")
    if not os.path.isdir(directory):
        raise SystemExit(f"cache directory {directory!r} does not exist")
    stats = compact_cache_dir(directory)
    print(
        f"compacted {directory}: {stats['entries']} entries from "
        f"{stats['files_merged']} files "
        f"({stats['segments_removed']} segments removed)"
    )
    return 0


def _command_campaign_windowed(args: argparse.Namespace) -> int:
    """``campaign --blif``: windowed obfuscation with resumable window jobs."""
    from .scenarios.campaign import CampaignSpec, run_windowed_campaign

    spec = CampaignSpec.windowed(
        args.blif,
        max_window_inputs=args.max_window_inputs,
        decoys=args.decoys,
        seed=args.seed,
        population=args.population or 4,
        generations=args.generations or 2,
        verify=not args.no_verify,
        name=args.name,
        windowing=args.windowing or None,
        scheduler=args.scheduler or None,
        probe_hardness=args.probe_hardness,
    )
    from .obs.log import get_logger

    outcome, assembled = run_windowed_campaign(
        args.blif,
        spec=spec,
        state_dir=args.state_dir or None,
        jobs=resolve_jobs(args.jobs or None),
        limit=args.limit if args.limit >= 0 else None,
        progress=get_logger("campaign"),
        verify=not args.no_verify,
        **_campaign_robustness_kwargs(args),
    )
    print()
    print(f"campaign {outcome.name}: {len(outcome.completed)}/{len(outcome.results)} "
          f"window jobs complete ({len(outcome.cached)} cached, "
          f"{len(outcome.failed)} failed, {len(outcome.pending)} pending) "
          f"in {outcome.total_seconds:.1f}s")
    _print_robustness(outcome)
    written = outcome.write_artifacts(
        json_path=args.json or None,
        csv_path=args.csv or None,
        bench_dir=args.bench_dir or None,
    )
    for path in written:
        print(f"wrote {path}")
    if assembled is None:
        print("windows still pending or failed; rerun to complete the stitch")
        return 1 if outcome.failed else 0
    print()
    print(assembled.summary())
    return 0 if assembled.verification.ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    handlers = {
        "obfuscate": _command_obfuscate,
        "table1": _command_table1,
        "figure4": _command_figure4,
        "attack": _command_attack,
        "sim": _command_sim,
        "campaign": _command_campaign,
        "serve": _command_serve,
        "cache": _command_cache,
        "doctor": _command_doctor,
        "trace": _command_trace,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
